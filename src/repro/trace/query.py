"""Query engine over the columnar trace store.

Treats a :class:`~repro.trace.store.TraceStore` as a database and
answers the ROADMAP's canned questions -- "top-5 instructions by DRAIN
time in window X", "flush-cause histogram per basic block", "what
regressed vs this baseline run" -- plus generic building blocks:

* :meth:`TraceQuery.attribute` -- the golden attribution policy run
  batch-style over the columns, optionally restricted to a commit-state
  subset and a cycle window. With no filters it is **bit-identical** to
  :func:`repro.trace.cycletrace.replay_golden` (same visit order, same
  float accumulation order), which the test suite pins.
* :func:`group_attribution` -- fold a raw (instruction, PSV) profile to
  instruction / basic-block / function granularity.
* :meth:`TraceQuery.top` -- top-k groups by attributed cycles.
* :meth:`TraceQuery.flush_histogram` -- FLUSHED cycles bucketed by
  (group, flush cause), causes decoded from the blamed µop's PSV bits.
* :func:`diff_attribution` -- cross-run regression diff on time shares
  (robust to runs of different lengths); rows above the threshold are
  flagged as regressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.events import Event
from repro.core.states import CommitState
from repro.isa.program import Program
from repro.trace.store import KIND_CYCLES, TraceStore

#: Grouping granularities :func:`group_attribution` understands.
GROUP_BY = ("instruction", "bb", "function")

#: Commit-state names accepted by the CLI (plus "total").
STATE_NAMES = tuple(s.name.lower() for s in CommitState)

#: PSV bits that explain a flush, in blame-priority order.
_FLUSH_EVENTS = (Event.FL_MB, Event.FL_EX, Event.FL_MO)


def flush_cause(psv: int) -> str:
    """The flush cause encoded in a blamed µop's PSV.

    A PSV can carry several FL bits (e.g. a mispredicted branch that
    also serialised); the first match in paper order (FL-MB, FL-EX,
    FL-MO) wins so every flushed cycle lands in exactly one bucket.
    """
    for event in _FLUSH_EVENTS:
        if psv & (1 << event):
            return event.display_name
    return "other"


def parse_states(name: str) -> tuple[CommitState, ...] | None:
    """CLI state name -> state filter (``"total"`` -> no filter).

    Raises:
        ValueError: For an unknown state name.
    """
    if name == "total":
        return None
    try:
        return (CommitState[name.upper()],)
    except KeyError:
        raise ValueError(
            f"unknown state {name!r}; choose from "
            f"{', '.join(STATE_NAMES + ('total',))}"
        ) from None


def group_attribution(
    raw: dict[tuple[int, int], float],
    by: str = "instruction",
    program: Program | None = None,
) -> dict[Any, float]:
    """Fold a raw (instruction, PSV) profile to *by* granularity.

    Keys: instruction index for ``"instruction"``, basic-block leader
    index for ``"bb"``, function name for ``"function"``. Accumulation
    follows the raw dict's insertion order, so grouped totals are
    deterministic.

    Raises:
        ValueError: For an unknown granularity, or ``bb``/``function``
            grouping without a program.
    """
    if by not in GROUP_BY:
        raise ValueError(
            f"unknown group-by {by!r}; choose from {', '.join(GROUP_BY)}"
        )
    if by != "instruction" and program is None:
        raise ValueError(f"group-by {by!r} needs the program")
    out: dict[Any, float] = {}
    for (index, _psv), cycles in raw.items():
        if by == "instruction":
            key: Any = index
        elif by == "bb":
            key = program.bb_of(index)
        else:
            key = program[index].func
        out[key] = out.get(key, 0.0) + cycles
    return out


def top_k(
    grouped: dict[Any, float], k: int
) -> list[tuple[Any, float]]:
    """The *k* largest groups, ties broken by key for determinism."""
    return sorted(grouped.items(), key=lambda kv: (-kv[1], kv[0]))[:k]


class TraceQuery:
    """Queries over one run's columnar trace.

    Args:
        store: The trace store (live, loaded, or mmap-backed).
        program: The run's program; required for basic-block/function
            grouping and for human-readable labels.
    """

    def __init__(
        self, store: TraceStore, program: Program | None = None
    ) -> None:
        self.store = store
        self.program = program

    # -- basic shape ---------------------------------------------------
    def total_cycles(self) -> int:
        """Cycles the trace covers."""
        ctrace = self.store.ctrace
        n = len(ctrace)
        if not n:
            return 0
        return ctrace.column("cycle")[n - 1] + ctrace.column("count")[n - 1]

    def state_cycles(self) -> dict[CommitState, int]:
        """Cycles per commit state (the coarse CPI stack)."""
        out = {state: 0 for state in CommitState}
        states = self.store.ctrace.column("state")
        counts = self.store.ctrace.column("count")
        for i in range(len(self.store.ctrace)):
            out[CommitState(states[i])] += counts[i]
        return out

    def window_range(
        self, window: int | None, window_cycles: int | None
    ) -> tuple[int, int] | None:
        """The cycle range of window index *window*.

        Raises:
            ValueError: For a window index without a window length.
        """
        if window is None:
            return None
        if not window_cycles or window_cycles <= 0:
            raise ValueError(
                "--window needs --window-cycles (a positive window "
                "length in cycles)"
            )
        return (window * window_cycles, (window + 1) * window_cycles)

    # -- attribution ---------------------------------------------------
    def attribute(
        self,
        states: tuple[CommitState, ...] | None = None,
        cycle_range: tuple[int, int] | None = None,
    ) -> dict[tuple[int, int], float]:
        """Golden-policy attribution over the columns.

        Args:
            states: Only attribute cycles spent in these commit states
                (``None`` = all four).
            cycle_range: Only attribute cycles in ``[lo, hi)``; runs
                straddling a boundary contribute their overlap.

        Returns:
            Raw (instruction index, PSV) -> attributed cycles. With no
            filters this is bit-identical to :func:`replay_golden` on
            the reconstructed record list: same record visit order,
            same per-key float accumulation order.
        """
        sel = (
            None
            if states is None
            else {int(state) for state in states}
        )
        lo, hi = cycle_range if cycle_range is not None else (0, None)
        compute_on = sel is None or int(CommitState.COMPUTE) in sel
        stalled_on = sel is None or int(CommitState.STALLED) in sel
        drained_on = sel is None or int(CommitState.DRAINED) in sel
        flushed_on = sel is None or int(CommitState.FLUSHED) in sel

        raw: dict[tuple[int, int], float] = {}
        stall_by_seq: dict[int, int] = {}
        pending_drain = 0
        last_committed: tuple[int, int] | None = None

        ctrace = self.store.ctrace
        kinds = ctrace.column("kind")
        state_col = ctrace.column("state")
        counts = ctrace.column("count")
        head_seqs = ctrace.column("head_seq")
        cycles_col = ctrace.column("cycle")
        group_starts = ctrace.column("group_start")
        group_sizes = ctrace.column("group_size")
        uops = self.store.commit_uops
        seq_col = uops.column("seq")
        index_col = uops.column("index")
        psv_col = uops.column("psv")

        get = raw.get
        stalled_state = int(CommitState.STALLED)
        drained_state = int(CommitState.DRAINED)

        for i in range(len(ctrace)):
            start = cycles_col[i]
            count = counts[i]
            if hi is not None:
                count = min(start + count, hi) - max(start, lo)
                # A fully out-of-range record still advances the
                # replay machinery below (commits pop stalls/drains).
                count = count if count > 0 else 0
            if kinds[i] == KIND_CYCLES:
                if not count:
                    continue
                state = state_col[i]
                if state == stalled_state:
                    if stalled_on:
                        seq = head_seqs[i]
                        stall_by_seq[seq] = (
                            stall_by_seq.get(seq, 0) + count
                        )
                elif state == drained_state:
                    if drained_on:
                        pending_drain += count
                else:  # FLUSHED
                    if flushed_on:
                        if last_committed is None:
                            pending_drain += count
                        else:
                            key = last_committed
                            raw[key] = get(key, 0.0) + count
                continue
            # Commit group: one COMPUTE cycle, plus it resolves any
            # pending drain and the head-stall accumulations.
            size = group_sizes[i]
            gstart = group_starts[i]
            first_index = index_col[gstart]
            first_psv = psv_col[gstart]
            if pending_drain:
                key = (first_index, first_psv)
                raw[key] = get(key, 0.0) + pending_drain
                pending_drain = 0
            share = 1.0 / size if compute_on and count else 0.0
            for j in range(gstart, gstart + size):
                key = (index_col[j], psv_col[j])
                if share:
                    raw[key] = get(key, 0.0) + share
                stalled = stall_by_seq.pop(seq_col[j], 0)
                if stalled:
                    raw[key] = get(key, 0.0) + stalled
            last_committed = (
                index_col[gstart + size - 1],
                psv_col[gstart + size - 1],
            )
        return raw

    # -- canned queries ------------------------------------------------
    def top(
        self,
        k: int = 5,
        states: tuple[CommitState, ...] | None = None,
        by: str = "instruction",
        window: int | None = None,
        window_cycles: int | None = None,
    ) -> list[tuple[Any, float]]:
        """Top-*k* groups by attributed cycles (optionally windowed)."""
        raw = self.attribute(
            states, self.window_range(window, window_cycles)
        )
        return top_k(group_attribution(raw, by, self.program), k)

    def flush_histogram(
        self, per: str = "bb"
    ) -> dict[tuple[Any, str], int]:
        """FLUSHED cycles bucketed by (group, flush cause).

        The blamed µop is the last-committed one (the golden policy);
        its PSV's FL bits name the cause. Flushed cycles before the
        first commit -- no blame exists -- land under group ``None``
        with cause ``"startup"``. The histogram partitions the FLUSHED
        cycle total exactly.
        """
        if per not in GROUP_BY:
            raise ValueError(
                f"unknown group-by {per!r}; choose from "
                f"{', '.join(GROUP_BY)}"
            )
        if per != "instruction" and self.program is None:
            raise ValueError(f"group-by {per!r} needs the program")
        out: dict[tuple[Any, str], int] = {}
        last_committed: tuple[int, int] | None = None
        ctrace = self.store.ctrace
        kinds = ctrace.column("kind")
        state_col = ctrace.column("state")
        counts = ctrace.column("count")
        group_starts = ctrace.column("group_start")
        group_sizes = ctrace.column("group_size")
        index_col = self.store.commit_uops.column("index")
        psv_col = self.store.commit_uops.column("psv")
        flushed_state = int(CommitState.FLUSHED)
        program = self.program
        for i in range(len(ctrace)):
            if kinds[i] == KIND_CYCLES:
                if state_col[i] != flushed_state:
                    continue
                if last_committed is None:
                    key: tuple[Any, str] = (None, "startup")
                else:
                    index, psv = last_committed
                    if per == "instruction":
                        group: Any = index
                    elif per == "bb":
                        group = program.bb_of(index)
                    else:
                        group = program[index].func
                    key = (group, flush_cause(psv))
                out[key] = out.get(key, 0) + counts[i]
            else:
                last = group_starts[i] + group_sizes[i] - 1
                last_committed = (index_col[last], psv_col[last])
        return out

    def filter_samples(
        self,
        sampler: str | None = None,
        min_weight: float | None = None,
        index_range: tuple[int, int] | None = None,
        psv_any: int | None = None,
    ) -> dict[tuple[int, int], float]:
        """Predicate-filtered aggregation over the samples table.

        Args:
            sampler: Only this sampler's captures.
            min_weight: Only captures of at least this weight.
            index_range: Only instruction indices in ``[lo, hi)``.
            psv_any: Only captures whose PSV intersects this mask.
        """
        samples = self.store.samples
        sampler_col = samples.column("sampler")
        index_col = samples.column("index")
        psv_col = samples.column("psv")
        weight_col = samples.column("weight")
        wanted = (
            None
            if sampler is None
            else self.store.strings.intern(sampler)
        )
        out: dict[tuple[int, int], float] = {}
        for i in range(len(samples)):
            if wanted is not None and sampler_col[i] != wanted:
                continue
            weight = weight_col[i]
            if min_weight is not None and weight < min_weight:
                continue
            index = index_col[i]
            if index_range is not None and not (
                index_range[0] <= index < index_range[1]
            ):
                continue
            psv = psv_col[i]
            if psv_any is not None and not (psv & psv_any):
                continue
            key = (index, psv)
            out[key] = out.get(key, 0.0) + weight
        return out

    # -- labels --------------------------------------------------------
    def label(self, key: Any, by: str) -> str:
        """Human-readable label for a group key."""
        program = self.program
        if key is None:
            return "(startup)"
        if by == "function":
            return str(key)
        if program is None or not (0 <= key < len(program)):
            return f"#{key}"
        inst = program[key]
        if by == "bb":
            tag = inst.label or inst.func
            return f"bb@{key} ({tag})"
        return f"#{key} {inst.disasm()}"


@dataclass
class DiffRow:
    """One group's before/after comparison."""

    key: Any
    label: str
    before: float
    after: float
    before_share: float
    after_share: float
    delta_share: float
    regression: bool

    def to_json(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "label": self.label,
            "before_cycles": round(self.before, 3),
            "after_cycles": round(self.after, 3),
            "before_share": round(self.before_share, 6),
            "after_share": round(self.after_share, 6),
            "delta_share": round(self.delta_share, 6),
            "regression": self.regression,
        }


@dataclass
class DiffReport:
    """Cross-run diff: per-group time shares, regressions flagged."""

    by: str
    before_total: float
    after_total: float
    threshold: float
    rows: list[DiffRow] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffRow]:
        return [row for row in self.rows if row.regression]

    @property
    def flagged(self) -> bool:
        return bool(self.regressions)

    def to_json(self) -> dict[str, Any]:
        return {
            "by": self.by,
            "before_total_cycles": round(self.before_total, 3),
            "after_total_cycles": round(self.after_total, 3),
            "threshold": self.threshold,
            "flagged": self.flagged,
            "rows": [row.to_json() for row in self.rows],
        }


def diff_attribution(
    before: TraceQuery,
    after: TraceQuery,
    by: str | None = None,
    states: tuple[CommitState, ...] | None = None,
    threshold: float = 0.02,
    k: int = 10,
) -> DiffReport:
    """Compare two runs' attributed time, flagging regressions.

    Comparison is on *shares of total attributed time* (so runs of
    different lengths -- a changed scale, an extra workload kwarg --
    compare meaningfully); a group whose share grew by more than
    *threshold* (absolute) is flagged as a regression.

    Args:
        by: Granularity; default instruction when both programs have
            equal length (indices align), else function.
        states: Restrict to a commit-state subset first.
        threshold: Absolute share growth that flags a regression.
        k: Rows kept (largest absolute share change first).
    """
    if by is None:
        same_shape = (
            before.program is not None
            and after.program is not None
            and len(before.program) == len(after.program)
        )
        by = "instruction" if same_shape else "function"
    before_groups = group_attribution(
        before.attribute(states), by, before.program
    )
    after_groups = group_attribution(
        after.attribute(states), by, after.program
    )
    before_total = sum(before_groups.values())
    after_total = sum(after_groups.values())
    keys = set(before_groups) | set(after_groups)
    rows: list[DiffRow] = []
    for key in keys:
        b = before_groups.get(key, 0.0)
        a = after_groups.get(key, 0.0)
        b_share = b / before_total if before_total else 0.0
        a_share = a / after_total if after_total else 0.0
        delta = a_share - b_share
        rows.append(
            DiffRow(
                key=key,
                label=after.label(key, by)
                if key in after_groups
                else before.label(key, by),
                before=b,
                after=a,
                before_share=b_share,
                after_share=a_share,
                delta_share=delta,
                regression=delta > threshold,
            )
        )
    rows.sort(key=lambda r: (-abs(r.delta_share), str(r.key)))
    return DiffReport(
        by=by,
        before_total=before_total,
        after_total=after_total,
        threshold=threshold,
        rows=rows[:k],
    )
