"""TraceDoctor-style cycle traces with offline attribution replay.

The paper captures cycle-by-cycle commit-stage traces with TraceDoctor
and models every analysis approach out-of-band on the host. This module
is that plane: attach a :class:`CycleTrace` to a core and it records

* one record per (run of identical) commit-state cycle(s), carrying the
  ROB-head sequence number for Stalled cycles, and
* one record per commit group, carrying each µop's sequence number,
  static index, and *final* PSV,

which is sufficient to re-derive the complete golden-reference PICS
*offline* with :func:`replay_golden` -- an implementation of the
attribution policy that shares no code with the core's built-in
accounting. The test suite replays traces and checks bit-exact
agreement, cross-validating both implementations.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO

from repro.core.states import CommitState

#: Record kinds.
KIND_CYCLES = 0
KIND_COMMIT = 1

_CYCLES_REC = struct.Struct("<BBIq")  # kind, state, count, head_seq
_COMMIT_HDR = struct.Struct("<BB")  # kind, group size
_COMMIT_ENTRY = struct.Struct("<qIH")  # seq, index, psv
_MAGIC = b"TEACYC1\n"


@dataclass
class CyclesRecord:
    """A run of *count* consecutive cycles in one commit state."""

    state: CommitState
    count: int
    head_seq: int  # ROB-head dynamic seq for STALLED cycles, else -1


@dataclass
class CommitRecord:
    """One commit group: (seq, static index, final PSV) per µop."""

    uops: list[tuple[int, int, int]]


class CycleTrace:
    """Collects cycle/commit records from a core (and optionally streams
    them to a binary file).

    Usable as a context manager, which guarantees the backing file is
    closed (and its buffers flushed) even when the simulation raises::

        with CycleTrace("run.cyc") as trace:
            simulate(program, cycle_trace=trace)
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.records: list[CyclesRecord | CommitRecord] = []
        self._file: BinaryIO | None = None
        if path is not None:
            self._file = open(path, "wb")
            self._file.write(_MAGIC)

    def __enter__(self) -> "CycleTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # Hooks called by the core -----------------------------------------
    def on_cycles(
        self, state: CommitState, count: int, head_seq: int
    ) -> None:
        """Record *count* cycles spent in *state*."""
        record = CyclesRecord(state, count, head_seq)
        self.records.append(record)
        if self._file is not None:
            self._file.write(
                _CYCLES_REC.pack(
                    KIND_CYCLES, int(state), count, head_seq
                )
            )

    def on_commit(self, uops: list[tuple[int, int, int]]) -> None:
        """Record one commit group of (seq, index, final psv)."""
        record = CommitRecord(list(uops))
        self.records.append(record)
        if self._file is not None:
            self._file.write(_COMMIT_HDR.pack(KIND_COMMIT, len(uops)))
            for seq, index, psv in uops:
                self._file.write(_COMMIT_ENTRY.pack(seq, index, psv))

    @property
    def closed(self) -> bool:
        """True when no backing file is open (in-memory or closed)."""
        return self._file is None

    def flush(self) -> None:
        """Flush the backing file's buffers, if one is open."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Close the backing file, if any; safe to call repeatedly."""
        handle, self._file = self._file, None
        if handle is not None:
            handle.close()


def read_trace(path: str | Path) -> list[CyclesRecord | CommitRecord]:
    """Load a binary cycle trace written by :class:`CycleTrace`.

    Raises:
        ValueError: On a bad magic or a truncated file.
    """
    records: list[CyclesRecord | CommitRecord] = []
    with open(path, "rb") as handle:
        if handle.read(len(_MAGIC)) != _MAGIC:
            raise ValueError("not a TEA cycle trace")
        while True:
            kind_byte = handle.read(1)
            if not kind_byte:
                return records
            kind = kind_byte[0]
            if kind == KIND_CYCLES:
                rest = handle.read(_CYCLES_REC.size - 1)
                if len(rest) < _CYCLES_REC.size - 1:
                    raise ValueError("truncated cycle trace")
                _, state, count, head_seq = _CYCLES_REC.unpack(
                    kind_byte + rest
                )
                records.append(
                    CyclesRecord(CommitState(state), count, head_seq)
                )
            elif kind == KIND_COMMIT:
                size_byte = handle.read(1)
                if not size_byte:
                    raise ValueError("truncated cycle trace")
                uops = []
                for _ in range(size_byte[0]):
                    blob = handle.read(_COMMIT_ENTRY.size)
                    if len(blob) < _COMMIT_ENTRY.size:
                        raise ValueError("truncated cycle trace")
                    uops.append(_COMMIT_ENTRY.unpack(blob))
                records.append(CommitRecord(uops))
            else:
                raise ValueError(f"unknown record kind {kind}")


def replay_golden(
    records: list[CyclesRecord | CommitRecord],
) -> dict[tuple[int, int], float]:
    """Re-derive the golden-reference raw profile from a cycle trace.

    Implements the paper's attribution policy from scratch:

    * Compute cycles: 1/n to each µop of the commit group;
    * Stalled cycles: accumulated against the head µop's sequence
      number, attributed with its final PSV when it commits;
    * Drained cycles: accumulated and attributed to the next-committing
      µop;
    * Flushed cycles: attributed to the last-committed µop.
    """
    raw: dict[tuple[int, int], float] = {}
    stall_by_seq: dict[int, int] = {}
    pending_drain = 0
    last_committed: tuple[int, int] | None = None

    def add(index: int, psv: int, weight: float) -> None:
        key = (index, psv)
        raw[key] = raw.get(key, 0.0) + weight

    for record in records:
        if isinstance(record, CyclesRecord):
            if record.state == CommitState.STALLED:
                stall_by_seq[record.head_seq] = (
                    stall_by_seq.get(record.head_seq, 0) + record.count
                )
            elif record.state == CommitState.DRAINED:
                pending_drain += record.count
            elif record.state == CommitState.FLUSHED:
                if last_committed is None:
                    pending_drain += record.count
                else:
                    add(*last_committed, record.count)
            # Compute cycles are carried by the commit records.
        else:
            share = 1.0 / len(record.uops)
            first_seq, first_index, first_psv = record.uops[0]
            if pending_drain:
                add(first_index, first_psv, pending_drain)
                pending_drain = 0
            for seq, index, psv in record.uops:
                add(index, psv, share)
                stalled = stall_by_seq.pop(seq, 0)
                if stalled:
                    add(index, psv, stalled)
            last_committed = (
                record.uops[-1][1],
                record.uops[-1][2],
            )
    return raw
