"""Sample collection plane: binary sample logs and offline PICS rebuild.

In the paper, the sampling interrupt handler writes each TEA sample
(timestamp, flags, instruction address(es), PSV(s) -- 88 bytes) to a
memory buffer that is flushed to a file; a post-processing tool turns the
file into PICS. This package is that path: attach a
:class:`SampleWriter` as a sampler's ``sink`` to log captures, then
rebuild the profile offline with :func:`read_profile`.
"""

from repro.trace.samples import (
    SampleReader,
    SampleRecord,
    SampleWriter,
    read_profile,
)
from repro.trace.cycletrace import (
    CommitRecord,
    CycleTrace,
    CyclesRecord,
    read_trace,
    replay_golden,
)

__all__ = [
    "SampleReader",
    "SampleRecord",
    "SampleWriter",
    "read_profile",
    "CommitRecord",
    "CycleTrace",
    "CyclesRecord",
    "read_trace",
    "replay_golden",
]
