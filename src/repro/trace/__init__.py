"""Trace plane: sample logs, cycle traces, and the columnar query tier.

In the paper, the sampling interrupt handler writes each TEA sample
(timestamp, flags, instruction address(es), PSV(s) -- 88 bytes) to a
memory buffer that is flushed to a file; a post-processing tool turns the
file into PICS. This package is that path, three layers deep:

* :mod:`repro.trace.samples` -- binary per-sample logs
  (:class:`SampleWriter` as a sampler ``sink``) and offline PICS
  rebuild (:func:`read_profile`);
* :mod:`repro.trace.cycletrace` -- TraceDoctor-style cycle traces and
  the offline golden-attribution replay (:func:`replay_golden`);
* :mod:`repro.trace.store` / :mod:`repro.trace.query` /
  :mod:`repro.trace.capture` -- the columnar (structure-of-arrays)
  trace database: mmap-able :class:`TraceStore` files keyed by
  :class:`~repro.engine.spec.RunSpec` hash, queried by
  :class:`TraceQuery` (golden attribution, group-by, top-k, flush
  histograms, cross-run diff) and surfaced as ``tea-repro query``.
"""

from repro.trace.samples import (
    SampleReader,
    SampleRecord,
    SampleWriter,
    read_profile,
)
from repro.trace.cycletrace import (
    CommitRecord,
    CycleTrace,
    CyclesRecord,
    read_trace,
    replay_golden,
)
from repro.trace.store import (
    ColumnSampleSink,
    ColumnTable,
    StringPool,
    TraceStore,
)
from repro.trace.query import (
    DiffReport,
    DiffRow,
    TraceQuery,
    diff_attribution,
    flush_cause,
    group_attribution,
    top_k,
)
from repro.trace.capture import (
    TraceBackendError,
    capture_run,
    ensure_trace,
)

__all__ = [
    "SampleReader",
    "SampleRecord",
    "SampleWriter",
    "read_profile",
    "CommitRecord",
    "CycleTrace",
    "CyclesRecord",
    "read_trace",
    "replay_golden",
    "ColumnSampleSink",
    "ColumnTable",
    "StringPool",
    "TraceStore",
    "DiffReport",
    "DiffRow",
    "TraceQuery",
    "diff_attribution",
    "flush_cause",
    "group_attribution",
    "top_k",
    "TraceBackendError",
    "capture_run",
    "ensure_trace",
]
