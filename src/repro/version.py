"""Model versioning: the single source of truth for result semantics.

Two artefacts live here, used by two different consumers:

* :data:`MODEL_VERSION` -- the behavioural revision of the simulation
  stack. It is hashed into every :class:`~repro.engine.spec.RunSpec`
  key, so bumping it invalidates every previously stored run in the
  :class:`~repro.engine.store.RunStore`.
* :data:`SEMANTIC_HASHES` -- a registry pinning the content hash of
  every *semantics-bearing* source file (the files whose changes can
  alter simulation results) to the :data:`MODEL_VERSION` they were
  pinned under. The tea-lint checker **TL006** verifies the pins on
  every lint run: a drifted file without a version bump is an error,
  which is what keeps stored runs and golden traces trustworthy.

Workflow when a registered file changes::

    1. bump MODEL_VERSION below (describe the change in the comment)
    2. python -m repro.version --refresh
    3. commit both together

``--refresh`` recomputes the pinned hashes and refuses to run when the
registered content drifted but :data:`MODEL_VERSION` still equals
:data:`PINNED_MODEL_VERSION` -- pass ``--allow-same-version`` only for
provably cosmetic edits (comments, formatting).

Hashes cover raw file bytes: deterministic, identical on every Python
version, and deliberately conservative -- a comment-only edit to a
semantics file also demands the explicit ``--allow-same-version``
acknowledgement.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

#: Behavioural revision of the simulation stack. Bump whenever the
#: timing model, samplers, or attribution policy change results; every
#: stored run keyed under the old version then misses automatically.
#: v2: samples_taken counts one sample per sample() even when its weight
#: is split across several committing µops (stored runs record it).
#: v3: tiered execution backends -- the core replays a shared InstStream,
#: warm-up replay settles hierarchy timing at window boundaries, and
#: RunSpec keys cover the backend/window geometry.
MODEL_VERSION = 3

#: Repo-relative paths of every file whose content can change
#: simulation results (timing model, samplers, memory system,
#: functional interpreter, branch predictor, PSV/event semantics).
#: Registering a file here makes tea-lint TL006 police its drift.
SEMANTIC_FILES = (
    "src/repro/backends/functional.py",
    "src/repro/backends/sampled.py",
    "src/repro/backends/warmup.py",
    "src/repro/branch/predictor.py",
    "src/repro/core/events.py",
    "src/repro/core/samplers.py",
    "src/repro/isa/interpreter.py",
    "src/repro/isa/semantics.py",
    "src/repro/memory/cache.py",
    "src/repro/memory/dram.py",
    "src/repro/memory/hierarchy.py",
    "src/repro/memory/tlb.py",
    "src/repro/uarch/core.py",
    "src/repro/uarch/uop.py",
)

# --- pinned hashes (auto-generated; python -m repro.version --refresh) ---
#: MODEL_VERSION the hashes below were pinned under.
PINNED_MODEL_VERSION = 3
#: sha256 of each registered file's bytes at pin time.
SEMANTIC_HASHES = {
    "src/repro/backends/functional.py":
        "754a63bda63491fc5e6b823e99649bbf783b3f775a6eb5e6bbb862597a9ab657",
    "src/repro/backends/sampled.py":
        "f4acbbec70488b07fd883f65e6c9a5e2e6dec3f513696d45557263b9f89ae0bb",
    "src/repro/backends/warmup.py":
        "59c35f0d5c63e7fbdcc8d3add5d894033139c46c0b735bf520d4006e08fdbdc3",
    "src/repro/branch/predictor.py":
        "6c8345ac40c885720a09f6ff0a72a18eef53b39d93ac6ac846ce290e2125436b",
    "src/repro/core/events.py":
        "555e8d6b791c196523bf110921478b1cf34e8b8737cff926f5a7a324135d0255",
    "src/repro/core/samplers.py":
        "a8ff11cc77d071770c55205a147d8257b115fa66a6bb6546db0f33647cf125b2",
    "src/repro/isa/interpreter.py":
        "e04c73de307cb31d15aead2e97a7a17c081828d5dbfa1937c4a892f0aed73c26",
    "src/repro/isa/semantics.py":
        "550caae32ecb0bcb606e678f97e0c431cc044d3c459d5c21c7af9b889ec57f10",
    "src/repro/memory/cache.py":
        "b18c125e06a7384de209d77600f50fabf5b45a92b1ddbb00763cb6a311d128da",
    "src/repro/memory/dram.py":
        "85fe19fe4b3316330ae218f5e3ac468b3119b5fcfbc9f88a803b574e4e16b026",
    "src/repro/memory/hierarchy.py":
        "027fb82bf74941d6f05460f4237ef932c937d94b08fef6e1196f50820b3d6fdf",
    "src/repro/memory/tlb.py":
        "6e799416dcd20a2c0efd72914ac75ae599d63a83984b0afc4256bf348662e338",
    "src/repro/uarch/core.py":
        "bcbe9c6b8ded434507466627d2b2ad83d711f69485b445d792ea3a1845fea337",
    "src/repro/uarch/uop.py":
        "b9f8e405d1b673cc594b23b967b988527218143e6636d802c5717fc9a0d27a63",
}
# --- end pinned hashes ---


def file_hash(path: Path) -> str:
    """sha256 hex digest of *path*'s bytes."""
    return hashlib.sha256(path.read_bytes()).hexdigest()


def current_hashes(root: Path) -> dict[str, str | None]:
    """Registered file -> current hash under *root* (None if missing)."""
    out: dict[str, str | None] = {}
    for rel in SEMANTIC_FILES:
        path = Path(root) / rel
        out[rel] = file_hash(path) if path.is_file() else None
    return out


def check_semantics(
    root: Path,
    pins: dict[str, str] | None = None,
    model_version: int | None = None,
    pinned_model_version: int | None = None,
    files: tuple[str, ...] | None = None,
) -> list[str]:
    """Verify the semantics pins against the tree under *root*.

    Returns a list of human-readable problems (empty = consistent).
    The *pins*/*model_version*/*pinned_model_version*/*files*
    overrides exist for tests; production callers use the module
    constants.
    """
    pins = SEMANTIC_HASHES if pins is None else pins
    version = MODEL_VERSION if model_version is None else model_version
    pinned = (
        PINNED_MODEL_VERSION
        if pinned_model_version is None
        else pinned_model_version
    )
    registered = SEMANTIC_FILES if files is None else files
    problems: list[str] = []
    for rel in registered:
        if rel not in pins:
            problems.append(
                f"registered semantics file {rel} has no pinned hash; "
                f"run 'python -m repro.version --refresh'"
            )
    actual = {
        rel: (
            file_hash(Path(root) / rel)
            if (Path(root) / rel).is_file()
            else None
        )
        for rel in pins
    }
    drifted = sorted(
        rel for rel, digest in actual.items()
        if digest is not None and digest != pins[rel]
    )
    missing = sorted(
        rel for rel, digest in actual.items() if digest is None
    )
    for rel in missing:
        problems.append(
            f"registered semantics file {rel} is missing from the tree"
        )
    if drifted and version == pinned:
        for rel in drifted:
            problems.append(
                f"{rel} changed but MODEL_VERSION is still {version}; "
                f"bump MODEL_VERSION in src/repro/version.py and run "
                f"'python -m repro.version --refresh'"
            )
    elif drifted:
        for rel in drifted:
            problems.append(
                f"{rel} changed and MODEL_VERSION was bumped to "
                f"{version}, but the pins are stale; run "
                f"'python -m repro.version --refresh'"
            )
    elif version != pinned:
        problems.append(
            f"MODEL_VERSION is {version} but the pins were generated "
            f"under {pinned}; run 'python -m repro.version --refresh'"
        )
    return problems


def find_repo_root(start: Path | None = None) -> Path:
    """Nearest ancestor of *start* (default cwd) with a pyproject.toml."""
    probe = Path.cwd() if start is None else Path(start).resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


_BLOCK_START = (
    "# --- pinned hashes (auto-generated; "
    "python -m repro.version --refresh) ---"
)
_BLOCK_END = "# --- end pinned hashes ---"


def refresh_pins(
    root: Path | None = None, allow_same_version: bool = False
) -> dict[str, str]:
    """Recompute the pins and rewrite this module's generated block.

    Raises:
        RuntimeError: If registered content drifted while MODEL_VERSION
            still equals PINNED_MODEL_VERSION (bump it first), unless
            *allow_same_version* acknowledges a cosmetic-only change.
    """
    root = find_repo_root() if root is None else Path(root)
    hashes = current_hashes(root)
    missing = sorted(rel for rel, h in hashes.items() if h is None)
    if missing:
        raise RuntimeError(
            "cannot pin missing semantics file(s): " + ", ".join(missing)
        )
    drifted = SEMANTIC_HASHES and any(
        SEMANTIC_HASHES.get(rel) != digest
        for rel, digest in hashes.items()
    )
    if (
        drifted
        and MODEL_VERSION == PINNED_MODEL_VERSION
        and not allow_same_version
    ):
        raise RuntimeError(
            "semantics files changed but MODEL_VERSION was not bumped; "
            "bump it in src/repro/version.py (or pass "
            "--allow-same-version for a provably cosmetic change)"
        )
    lines = [
        _BLOCK_START,
        "#: MODEL_VERSION the hashes below were pinned under.",
        f"PINNED_MODEL_VERSION = {MODEL_VERSION}",
        "#: sha256 of each registered file's bytes at pin time.",
        "SEMANTIC_HASHES = {",
    ]
    for rel in SEMANTIC_FILES:
        lines.append(f'    "{rel}":')
        lines.append(f'        "{hashes[rel]}",')
    lines.append("}")
    lines.append(_BLOCK_END)

    module_path = Path(__file__)
    source = module_path.read_text()
    start = source.index(_BLOCK_START)
    end = source.index(_BLOCK_END) + len(_BLOCK_END)
    module_path.write_text(
        source[:start] + "\n".join(lines) + source[end:]
    )
    return {rel: digest for rel, digest in hashes.items() if digest}


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.version``: report or refresh the pins."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.version",
        description="Inspect or refresh the semantics-file pins.",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="recompute the pinned hashes and rewrite version.py",
    )
    parser.add_argument(
        "--allow-same-version", action="store_true",
        help="permit --refresh without a MODEL_VERSION bump "
        "(cosmetic changes only)",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repository root (default: nearest pyproject.toml)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root) if args.root else find_repo_root()
    if args.refresh:
        try:
            refresh_pins(root, allow_same_version=args.allow_same_version)
        except RuntimeError as exc:
            print(f"error: {exc}")
            return 1
        print(
            f"pinned {len(SEMANTIC_FILES)} semantics file(s) under "
            f"MODEL_VERSION {MODEL_VERSION}"
        )
        return 0
    problems = check_semantics(root)
    if problems:
        for problem in problems:
            print(problem)
        return 1
    print(
        f"semantics pins OK ({len(SEMANTIC_FILES)} file(s), "
        f"MODEL_VERSION {MODEL_VERSION})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
