"""Fig 5: PICS error per benchmark for IBS, SPE, RIS, NCI-TEA, and TEA.

The paper reports average errors of 55.6% (IBS), 55.5% (SPE), 56.0%
(RIS), 11.3% (NCI-TEA), and 2.1% (TEA). Absolute numbers here differ
(different substrate, ~10^3x shorter runs), but the reproduction target
is the ordering TEA < NCI-TEA << IBS ~= SPE ~= RIS and the magnitude gap
between commit-sampling and front-end tagging.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import (
    TECHNIQUES,
    ExperimentRunner,
    format_table,
)
from repro.workloads import WORKLOAD_NAMES


@dataclass
class AccuracyResult:
    """Per-benchmark, per-technique PICS errors."""

    errors: dict[str, dict[str, float]]  # benchmark -> technique -> error
    techniques: tuple[str, ...]

    def average(self, technique: str) -> float:
        """Mean error of a technique across benchmarks.

        Raises:
            ValueError: If the result holds no benchmarks (the
                experiment ran with an empty workload tuple).
        """
        self._require_benchmarks()
        values = [row[technique] for row in self.errors.values()]
        return sum(values) / len(values)

    def maximum(self, technique: str) -> float:
        """Worst-case error of a technique across benchmarks.

        Raises:
            ValueError: If the result holds no benchmarks (the
                experiment ran with an empty workload tuple).
        """
        self._require_benchmarks()
        return max(row[technique] for row in self.errors.values())

    def _require_benchmarks(self) -> None:
        if not self.errors:
            raise ValueError(
                "AccuracyResult holds no benchmarks; the experiment "
                "was run with an empty workload tuple"
            )


def run(
    runner: ExperimentRunner | None = None,
    names: tuple[str, ...] = WORKLOAD_NAMES,
    techniques: tuple[str, ...] = TECHNIQUES,
) -> AccuracyResult:
    """Run the Fig 5 experiment.

    Raises:
        ValueError: If *names* is empty (an empty workload tuple would
            otherwise surface later as a bare ``ZeroDivisionError`` in
            :meth:`AccuracyResult.average`).
    """
    if not names:
        raise ValueError(
            "accuracy experiment needs at least one workload name"
        )
    runner = runner or ExperimentRunner()
    errors: dict[str, dict[str, float]] = {}
    for name in names:
        bench = runner.run(name)
        errors[name] = {
            technique: bench.error(technique) for technique in techniques
        }
    return AccuracyResult(errors=errors, techniques=techniques)


def format_result(result: AccuracyResult) -> str:
    """Render the Fig 5 table (one row per benchmark + avg/max)."""
    headers = ["benchmark"] + [t for t in result.techniques]
    rows = []
    for name, row in sorted(result.errors.items()):
        rows.append(
            [name] + [f"{row[t]:6.1%}" for t in result.techniques]
        )
    rows.append(
        ["average"]
        + [f"{result.average(t):6.1%}" for t in result.techniques]
    )
    rows.append(
        ["max"]
        + [f"{result.maximum(t):6.1%}" for t in result.techniques]
    )
    return format_table(
        headers,
        rows,
        title="Fig 5: PICS error vs golden reference "
        "(instruction granularity)",
    )
