"""Ablations called out by the paper.

1. **TEA-at-dispatch** (Section 5): the paper notes a TEA variant that
   tags instructions at dispatch "yields similar accuracy to IBS, SPE,
   and RIS" -- i.e. TEA's event set is not what makes it accurate, its
   time-proportional sampling is.

2. **Event-set width** (Fig 3 / Section 3): sweeping the PSV bit budget
   through the event hierarchy trades interpretability (the fraction of
   non-compute cycles that carry at least one explaining event, and the
   error a restricted golden reference would incur against the full one)
   against storage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.error import pics_error
from repro.core.events import Event, event_mask, select_event_set
from repro.experiments.runner import ExperimentRunner, format_table
from repro.workloads import WORKLOAD_NAMES


# ----------------------------------------------------------------------
# Ablation 1: TEA tagging at dispatch.
# ----------------------------------------------------------------------
@dataclass
class DispatchTeaResult:
    """Mean errors of TEA, TEA-dispatch, and IBS."""

    mean_errors: dict[str, float]
    per_benchmark: dict[str, dict[str, float]]


def run_dispatch_tea(
    runner: ExperimentRunner | None = None,
    names: tuple[str, ...] = WORKLOAD_NAMES,
) -> DispatchTeaResult:
    """Compare TEA vs its dispatch-tagging variant vs IBS."""
    if runner is None:
        runner = ExperimentRunner(
            techniques=("TEA", "TEA-dispatch", "IBS")
        )
    per_benchmark: dict[str, dict[str, float]] = {}
    for name in names:
        bench = runner.run(name)
        per_benchmark[name] = {
            t: bench.error(t) for t in ("TEA", "TEA-dispatch", "IBS")
        }
    mean = {
        t: sum(row[t] for row in per_benchmark.values())
        / len(per_benchmark)
        for t in ("TEA", "TEA-dispatch", "IBS")
    }
    return DispatchTeaResult(mean_errors=mean, per_benchmark=per_benchmark)


def format_dispatch_tea(result: DispatchTeaResult) -> str:
    """Render ablation 1."""
    headers = ["benchmark", "TEA", "TEA-dispatch", "IBS"]
    rows = [
        [name] + [f"{row[t]:6.1%}" for t in headers[1:]]
        for name, row in sorted(result.per_benchmark.items())
    ]
    rows.append(
        ["average"]
        + [f"{result.mean_errors[t]:6.1%}" for t in headers[1:]]
    )
    return format_table(
        headers,
        rows,
        title="Ablation: tagging TEA's events at dispatch forfeits its "
        "accuracy (Sec 5)",
    )


# ----------------------------------------------------------------------
# Ablation 2: PSV width vs interpretability.
# ----------------------------------------------------------------------
@dataclass
class EventSetPoint:
    """One PSV-width budget point."""

    bits: int
    events: tuple[str, ...]
    explained_fraction: float  # evented share of non-compute cycles kept
    error_vs_full: float  # error of the projected golden vs full golden


@dataclass
class EventSetResult:
    """The Fig 3 trade-off sweep."""

    points: list[EventSetPoint]


def run_event_sets(
    runner: ExperimentRunner | None = None,
    names: tuple[str, ...] = WORKLOAD_NAMES,
    budgets: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
) -> EventSetResult:
    """Sweep the PSV bit budget through the event hierarchy."""
    runner = runner or ExperimentRunner()
    goldens = [runner.run(name).golden for name in names]
    full_mask = event_mask(frozenset(Event))
    points = []
    for bits in budgets:
        selected = select_event_set(bits)
        mask = event_mask(selected)
        explained = 0.0
        evented_total = 0.0
        error_sum = 0.0
        for golden in goldens:
            for stack in golden.stacks.values():
                for psv, cycles in stack.items():
                    if psv:  # cycles carrying at least one event
                        evented_total += cycles
                        if psv & mask:
                            explained += cycles
            error_sum += pics_error(
                golden.project(mask), golden, full_mask, normalize=False
            )
        points.append(
            EventSetPoint(
                bits=bits,
                events=tuple(
                    e.display_name for e in sorted(selected)
                ),
                explained_fraction=(
                    explained / evented_total if evented_total else 0.0
                ),
                error_vs_full=error_sum / len(goldens),
            )
        )
    return EventSetResult(points=points)


def format_event_sets(result: EventSetResult) -> str:
    """Render ablation 2."""
    headers = ["bits", "explained", "error vs 9-bit", "events"]
    rows = [
        [
            str(p.bits),
            f"{p.explained_fraction:6.1%}",
            f"{p.error_vs_full:6.1%}",
            ", ".join(p.events) if p.events else "(none)",
        ]
        for p in result.points
    ]
    return format_table(
        headers,
        rows,
        title="Ablation: PSV width vs interpretability "
        "(event hierarchy of Fig 3)",
    )
