"""Experiment harness: one module per paper table/figure.

All experiments share :class:`repro.experiments.runner.ExperimentRunner`,
which simulates each benchmark once with every analyzer attached (the
paper evaluates up to 15 configurations out-of-band from a single FireSim
run for exactly this reason) and caches results per (workload, config).

Each ``figN`` module exposes a ``run(...)`` returning a structured result
and a ``format_table(result)`` returning the rows the paper reports.
"""

from repro.experiments.runner import (
    DEFAULT_PERIOD,
    DEFAULT_SCALE,
    TECHNIQUES,
    BenchmarkRun,
    ExperimentRunner,
)

__all__ = [
    "DEFAULT_PERIOD",
    "DEFAULT_SCALE",
    "TECHNIQUES",
    "BenchmarkRun",
    "ExperimentRunner",
]
