"""Sampling-noise quantification: error bars over sampler seeds.

The reproduction runs ~10^3x fewer samples than the paper, so a share of
every reported error is statistical rather than systematic. This
experiment separates the two: each technique is run with *k* independent
sampler seeds (jitter phases and tag-slot choices differ; the simulated
cycles are identical) and the per-benchmark error is reported as
mean +/- standard deviation. TEA's mean falling with tight deviations,
while IBS's stays high with equally tight deviations, shows the Fig 5
gap is systematic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.error import pics_error
from repro.core.events import event_mask
from repro.core.samplers import make_sampler
from repro.experiments.runner import format_table
from repro.uarch.core import simulate
from repro.workloads import build


@dataclass
class NoiseStats:
    """Error distribution of one technique on one benchmark."""

    mean: float
    std: float
    runs: int

    @classmethod
    def from_values(cls, values: list[float]) -> "NoiseStats":
        """Mean and (population) standard deviation."""
        if not values:
            raise ValueError("no values")
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return cls(mean=mean, std=math.sqrt(variance), runs=len(values))


@dataclass
class NoiseResult:
    """benchmark -> technique -> error distribution."""

    stats: dict[str, dict[str, NoiseStats]]
    seeds: tuple[int, ...]


def run(
    names: tuple[str, ...] = ("lbm", "omnetpp", "exchange2"),
    techniques: tuple[str, ...] = ("TEA", "IBS"),
    seeds: tuple[int, ...] = (11, 22, 33, 44, 55),
    scale: float = 1.0,
    period: int = 293,
) -> NoiseResult:
    """Run the seed sweep (one simulation per benchmark: all seeds'
    samplers attach to the same run and observe identical cycles)."""
    stats: dict[str, dict[str, NoiseStats]] = {}
    for name in names:
        workload = build(name, scale=scale)
        samplers = {
            (technique, seed): make_sampler(technique, period, seed=seed)
            for technique in techniques
            for seed in seeds
        }
        result = simulate(
            workload.program,
            samplers=list(samplers.values()),
            arch_state=workload.fresh_state(),
        )
        golden = result.golden_profile()
        stats[name] = {}
        for technique in techniques:
            errors = []
            for seed in seeds:
                sampler = samplers[(technique, seed)]
                errors.append(
                    pics_error(
                        sampler.profile(),
                        golden,
                        event_mask(sampler.events),
                    )
                )
            stats[name][technique] = NoiseStats.from_values(errors)
    return NoiseResult(stats=stats, seeds=seeds)


def format_result(result: NoiseResult) -> str:
    """Render the mean +/- std table."""
    techniques = list(next(iter(result.stats.values())))
    headers = ["benchmark"] + [
        f"{t} (mean +/- std)" for t in techniques
    ]
    rows = []
    for name, by_technique in sorted(result.stats.items()):
        rows.append(
            [name]
            + [
                f"{s.mean:6.1%} +/- {s.std:5.1%}"
                for s in (by_technique[t] for t in techniques)
            ]
        )
    return format_table(
        headers,
        rows,
        title=f"Sampling noise over {len(result.seeds)} sampler seeds "
        "(identical simulated cycles)",
    )
