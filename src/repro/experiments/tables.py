"""Tables 1 and 2: static configuration tables of the paper."""

from __future__ import annotations

from repro.core.events import EVENT_DESCRIPTIONS, EVENT_SETS, Event
from repro.experiments.runner import format_table
from repro.uarch.config import CoreConfig


def format_table1() -> str:
    """Render Table 1: the performance events of TEA, IBS, SPE, RIS."""
    techniques = ("TEA", "IBS", "SPE", "RIS")
    headers = ["event", "description"] + list(techniques)
    rows = []
    for event in Event:
        rows.append(
            [event.display_name, EVENT_DESCRIPTIONS[event]]
            + [
                "yes" if event in EVENT_SETS[t] else "no"
                for t in techniques
            ]
        )
    return format_table(
        headers,
        rows,
        title="Table 1: performance events per technique "
        "(IBS/SPE/RIS sets reconstructed; see DESIGN.md)",
    )


def format_table2(config: CoreConfig | None = None) -> str:
    """Render Table 2: the baseline architecture configuration."""
    cfg = config or CoreConfig()
    mem = cfg.memory
    rows = [
        ["Core", f"OoO 4-way superscalar @ {cfg.clock_ghz} GHz"],
        [
            "Front-end",
            f"{cfg.fetch_width}-wide fetch, "
            f"{cfg.fetch_buffer_entries}-entry fetch buffer, "
            f"{cfg.decode_width}-wide decode, gshare predictor "
            f"({cfg.branch.gshare_bits}-bit PHT index, "
            f"{cfg.branch.btb_entries}-entry BTB, "
            f"{cfg.branch.ras_entries}-entry RAS)",
        ],
        [
            "Execute",
            f"{cfg.rob_entries}-entry ROB, "
            f"{cfg.mem_queue_entries}-entry {cfg.mem_issue_width}-issue "
            f"memory queue, {cfg.int_queue_entries}-entry "
            f"{cfg.int_issue_width}-issue integer queue, "
            f"{cfg.fp_queue_entries}-entry {cfg.fp_issue_width}-issue "
            "floating-point queue",
        ],
        [
            "LSU",
            f"{cfg.load_queue_entries + cfg.store_queue_entries}-entry "
            "load/store queue",
        ],
        [
            "L1",
            f"{mem.l1i_size // 1024} KB {mem.l1i_assoc}-way I-cache, "
            f"{mem.l1d_size // 1024} KB {mem.l1d_assoc}-way D-cache "
            f"w/ {mem.l1d_mshrs} MSHRs, next-line prefetcher",
        ],
        [
            "LLC",
            f"{mem.llc_size // (1024 * 1024)} MiB {mem.llc_assoc}-way "
            f"w/ {mem.llc_mshrs} MSHRs",
        ],
        [
            "TLB",
            f"page-table walker ({mem.tlb_walk_latency} cycles), "
            f"{mem.dtlb_entries}-entry fully-assoc L1 D-TLB, "
            f"{mem.itlb_entries}-entry fully-assoc L1 I-TLB, "
            f"{mem.l2_tlb_entries}-entry direct-mapped L2 TLB",
        ],
        [
            "Memory",
            f"{mem.dram_latency}-cycle latency, one line per "
            f"{mem.dram_cycles_per_line} cycles (~16 GB/s at "
            f"{cfg.clock_ghz} GHz)",
        ],
    ]
    return format_table(
        ["part", "configuration"],
        rows,
        title="Table 2: baseline architecture configuration",
    )
