"""Shared experiment runner: a thin façade over :mod:`repro.engine`.

The paper evaluates all sampling techniques out-of-band from a single
simulation so every technique observes the exact same cycles; the
engine layer reproduces that (one :class:`repro.uarch.Core` run per
benchmark with all samplers attached) and adds spec-keyed memoisation,
an optional cross-process result store, parallel suite execution, and
run telemetry. This module keeps the historical
:class:`ExperimentRunner` interface every experiment module uses, and
re-exports the engine's constants and :class:`BenchmarkRun` for
backwards compatibility.
"""

from __future__ import annotations

from repro.engine import (
    DEFAULT_PERIOD,
    DEFAULT_SCALE,
    TECHNIQUES,
    BenchmarkRun,
    Engine,
    RunLog,
    RunSpec,
    RunStore,
)
from repro.uarch.config import CoreConfig
from repro.workloads import WORKLOAD_NAMES

__all__ = [
    "BenchmarkRun",
    "DEFAULT_PERIOD",
    "DEFAULT_SCALE",
    "TECHNIQUES",
    "ExperimentRunner",
    "format_table",
]


class ExperimentRunner:
    """Simulates benchmarks once and serves all experiments from cache.

    A façade over :class:`repro.engine.Engine`: builds canonical
    :class:`RunSpec` keys from its configuration and delegates running,
    caching, persistence, and telemetry to the engine.

    Args:
        scale: Workload scale factor.
        period: Base sampling period (cycles).
        config: Core configuration override.
        techniques: Techniques to attach by default.
        extra_periods: Additional periods to attach per technique (used
            by the Fig 8 frequency sweep); sampler keys become
            ``f"{technique}@{period}"``.
        store: Optional :class:`RunStore` for cross-process result
            persistence (``None`` keeps runs in-process only).
        jobs: Default worker count for :meth:`run_suite`.
        run_log: Optional :class:`RunLog` telemetry sink.
        retries: Per-run retry attempts for suite execution.
        timeout: Per-attempt wall-clock bound (seconds) for parallel
            suite runs.
        backoff: Base seconds of the jittered exponential retry
            backoff.
        keep_going: Return partial suite results plus a report
            instead of raising on failures.
        engine: Share an existing engine (its memo, store, and
            telemetry) instead of building one; ``store``/``jobs``/
            ``run_log`` and the resilience knobs are ignored when
            given.
    """

    def __init__(
        self,
        scale: float = DEFAULT_SCALE,
        period: int = DEFAULT_PERIOD,
        config: CoreConfig | None = None,
        techniques: tuple[str, ...] = TECHNIQUES,
        extra_periods: tuple[int, ...] = (),
        *,
        store: RunStore | None = None,
        jobs: int = 1,
        run_log: RunLog | None = None,
        retries: int = 1,
        timeout: float | None = None,
        backoff: float = 0.0,
        keep_going: bool = False,
        engine: Engine | None = None,
    ) -> None:
        self.scale = scale
        self.period = period
        self.config = config
        self.techniques = tuple(techniques)
        self.extra_periods = tuple(extra_periods)
        if engine is None:
            engine = Engine(
                store=store,
                run_log=run_log,
                jobs=jobs,
                retries=retries,
                timeout=timeout,
                backoff=backoff,
                keep_going=keep_going,
            )
        self.engine = engine

    @property
    def store(self) -> RunStore | None:
        """The engine's run store (if any)."""
        return self.engine.store

    @property
    def jobs(self) -> int:
        """The engine's default suite worker count."""
        return self.engine.jobs

    @property
    def last_suite_report(self):
        """The engine's most recent suite execution report (if any)."""
        return self.engine.last_suite_report

    def spec(self, name: str, **workload_kwargs) -> RunSpec:
        """The canonical :class:`RunSpec` for one benchmark run."""
        return RunSpec.make(
            name,
            workload_kwargs,
            scale=self.scale,
            period=self.period,
            config=self.config,
            techniques=self.techniques,
            extra_periods=self.extra_periods,
        )

    def run(self, name: str, **workload_kwargs) -> BenchmarkRun:
        """Simulate one benchmark (memoised) with all samplers attached."""
        return self.engine.run(self.spec(name, **workload_kwargs))

    def run_suite(
        self,
        names: tuple[str, ...] | None = None,
        jobs: int | None = None,
    ) -> dict[str, BenchmarkRun]:
        """Simulate the whole suite (memoised; parallel when jobs > 1)."""
        names = tuple(names or WORKLOAD_NAMES)
        return self.engine.run_suite(
            {name: self.spec(name) for name in names}, jobs=jobs
        )

    def derive(
        self,
        *,
        scale: float | None = None,
        period: int | None = None,
        config: CoreConfig | None = None,
        techniques: tuple[str, ...] | None = None,
        extra_periods: tuple[int, ...] | None = None,
    ) -> "ExperimentRunner":
        """A runner variant sharing this runner's engine.

        Used by the sweep/ablation experiments so their differently
        configured runs still land in the same memo, store, and run
        log.
        """
        return ExperimentRunner(
            scale=self.scale if scale is None else scale,
            period=self.period if period is None else period,
            config=self.config if config is None else config,
            techniques=(
                self.techniques if techniques is None else techniques
            ),
            extra_periods=(
                self.extra_periods
                if extra_periods is None
                else extra_periods
            ),
            engine=self.engine,
        )


def format_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Render an aligned ASCII table (used by every experiment module)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
