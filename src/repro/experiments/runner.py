"""Shared experiment runner with per-benchmark result caching.

The paper evaluates all sampling techniques out-of-band from a single
simulation so every technique observes the exact same cycles; the runner
reproduces that: one :class:`repro.uarch.Core` run per benchmark with all
samplers (and any frequency-sweep variants) attached, memoised per
(workload name, scale, period set, config) for reuse across experiments
in one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.error import pics_error
from repro.core.events import EVENT_SETS, event_mask
from repro.core.pics import PicsProfile
from repro.core.samplers import Sampler, make_sampler
from repro.uarch.config import CoreConfig
from repro.uarch.core import CoreResult, simulate
from repro.workloads import WORKLOAD_NAMES, Workload, build

#: The five techniques of the headline comparison (Fig 5), paper order.
TECHNIQUES = ("IBS", "SPE", "RIS", "NCI-TEA", "TEA")

#: Default sampling period. The paper samples every 800,000 cycles
#: (4 kHz at 3.2 GHz) on runs of >= 10^11 cycles; our kernels run ~10^5
#: cycles, so the period is scaled by ~10^3 to keep the number of samples
#: statistically comparable.
DEFAULT_PERIOD = 293

#: Default workload scale for experiments.
DEFAULT_SCALE = 1.0


@dataclass
class BenchmarkRun:
    """One benchmark simulated with a set of samplers attached."""

    workload: Workload
    result: CoreResult
    samplers: dict[str, Sampler] = field(default_factory=dict)

    @property
    def golden(self) -> PicsProfile:
        """Golden-reference profile of this run."""
        return self.result.golden_profile()

    def profile(self, technique: str) -> PicsProfile:
        """A technique's sampled profile.

        Raises:
            KeyError: If the technique was not attached to this run.
        """
        return self.samplers[technique].profile()

    def error(self, technique: str) -> float:
        """Instruction-granularity PICS error of a technique (Sec. 4)."""
        sampler = self.samplers[technique]
        return pics_error(
            sampler.profile(), self.golden, event_mask(sampler.events)
        )


class ExperimentRunner:
    """Simulates benchmarks once and serves all experiments from cache.

    Args:
        scale: Workload scale factor.
        period: Base sampling period (cycles).
        config: Core configuration override.
        techniques: Techniques to attach by default.
        extra_periods: Additional periods to attach per technique (used
            by the Fig 8 frequency sweep); sampler keys become
            ``f"{technique}@{period}"``.
    """

    def __init__(
        self,
        scale: float = DEFAULT_SCALE,
        period: int = DEFAULT_PERIOD,
        config: CoreConfig | None = None,
        techniques: tuple[str, ...] = TECHNIQUES,
        extra_periods: tuple[int, ...] = (),
    ) -> None:
        self.scale = scale
        self.period = period
        self.config = config
        self.techniques = techniques
        self.extra_periods = tuple(extra_periods)
        self._cache: dict[str, BenchmarkRun] = {}

    def run(self, name: str, **workload_kwargs) -> BenchmarkRun:
        """Simulate one benchmark (memoised) with all samplers attached."""
        key = name
        if workload_kwargs:
            key = name + repr(sorted(workload_kwargs.items()))
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        workload = build(name, scale=self.scale, **workload_kwargs)
        samplers: dict[str, Sampler] = {}
        for seed_offset, technique in enumerate(self.techniques):
            samplers[technique] = make_sampler(
                technique, self.period, seed=12345 + seed_offset
            )
            for extra in self.extra_periods:
                samplers[f"{technique}@{extra}"] = make_sampler(
                    technique, extra, seed=54321 + seed_offset
                )
        result = simulate(
            workload.program,
            config=self.config,
            samplers=list(samplers.values()),
            arch_state=workload.fresh_state(),
        )
        run = BenchmarkRun(workload=workload, result=result,
                           samplers=samplers)
        self._cache[key] = run
        return run

    def run_suite(
        self, names: tuple[str, ...] | None = None
    ) -> dict[str, BenchmarkRun]:
        """Simulate the whole suite (memoised)."""
        return {
            name: self.run(name) for name in (names or WORKLOAD_NAMES)
        }


def format_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Render an aligned ASCII table (used by every experiment module)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
