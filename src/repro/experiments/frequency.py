"""Fig 8: PICS error versus sampling frequency.

The paper sweeps sampling frequency and finds accuracy insensitive above
4 kHz, which motivates 4 kHz as the default (balancing accuracy against
the run-time overhead modelled in :mod:`repro.core.overhead`). Our
periods are scaled like everything else; the reproduction target is the
shape: error flat-to-slowly-rising as the period grows, TEA lowest
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.error import pics_error
from repro.core.events import event_mask
from repro.core.overhead import performance_overhead
from repro.experiments.runner import (
    TECHNIQUES,
    ExperimentRunner,
    format_table,
)
from repro.workloads import WORKLOAD_NAMES

#: Sweep periods (cycles). The paper's 4 kHz baseline maps to ~293 here;
#: smaller period = higher frequency.
SWEEP_PERIODS = (73, 151, 293, 601, 1201, 2403)


@dataclass
class FrequencyResult:
    """Mean error per technique per sampling period."""

    periods: tuple[int, ...]
    mean_errors: dict[str, dict[int, float]]  # technique -> period -> err


def run(
    runner: ExperimentRunner | None = None,
    names: tuple[str, ...] = WORKLOAD_NAMES,
    periods: tuple[int, ...] = SWEEP_PERIODS,
    techniques: tuple[str, ...] = TECHNIQUES,
) -> FrequencyResult:
    """Run the Fig 8 sweep (one simulation per benchmark, all periods
    attached out-of-band, exactly like the paper's methodology)."""
    if runner is None:
        runner = ExperimentRunner(extra_periods=periods)
    sums: dict[str, dict[int, float]] = {
        t: {p: 0.0 for p in periods} for t in techniques
    }
    for name in names:
        bench = runner.run(name)
        golden = bench.golden
        for technique in techniques:
            for period in periods:
                sampler = bench.samplers[f"{technique}@{period}"]
                sums[technique][period] += pics_error(
                    sampler.profile(), golden, event_mask(sampler.events)
                )
    n = len(names)
    return FrequencyResult(
        periods=tuple(periods),
        mean_errors={
            t: {p: s / n for p, s in by_period.items()}
            for t, by_period in sums.items()
        },
    )


def format_result(result: FrequencyResult) -> str:
    """Render the Fig 8 table (rows: period; cols: technique)."""
    headers = ["period", "overhead"] + list(result.mean_errors)
    rows = []
    for period in result.periods:
        # Overhead uses the paper-scale equivalent period (x~2730 to map
        # our scaled periods back to the 800k-cycle 4 kHz baseline).
        scaled = period * 800_000 // 293
        rows.append(
            [str(period), f"{performance_overhead(scaled):5.2%}"]
            + [
                f"{result.mean_errors[t][period]:6.1%}"
                for t in result.mean_errors
            ]
        )
    return format_table(
        headers,
        rows,
        title="Fig 8: mean PICS error vs sampling period "
        "(smaller period = higher frequency)",
    )
