"""Fig 9: PICS error at instruction and function granularity.

The paper's observation: the error of the front-end-tagging techniques
does not collapse at coarser granularity because cycles are
systematically misattributed to the wrong *events*, not just the wrong
instructions; TEA is uniformly the most accurate. Basic-block and
application granularities (paper: "same trends") are included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.error import error_at_granularity
from repro.core.events import event_mask
from repro.core.pics import Granularity
from repro.experiments.runner import (
    TECHNIQUES,
    ExperimentRunner,
    format_table,
)
from repro.workloads import WORKLOAD_NAMES

#: Granularities reported (the paper's figure shows the first two).
GRANULARITIES = (
    Granularity.INSTRUCTION,
    Granularity.BASIC_BLOCK,
    Granularity.FUNCTION,
    Granularity.APPLICATION,
)


@dataclass
class GranularityResult:
    """Mean error per technique per granularity."""

    mean_errors: dict[str, dict[Granularity, float]]


def run(
    runner: ExperimentRunner | None = None,
    names: tuple[str, ...] = WORKLOAD_NAMES,
    techniques: tuple[str, ...] = TECHNIQUES,
    granularities: tuple[Granularity, ...] = GRANULARITIES,
) -> GranularityResult:
    """Run the Fig 9 experiment."""
    runner = runner or ExperimentRunner()
    sums = {t: {g: 0.0 for g in granularities} for t in techniques}
    for name in names:
        bench = runner.run(name)
        golden = bench.golden
        program = bench.workload.program
        for technique in techniques:
            sampler = bench.samplers[technique]
            profile = sampler.profile()
            mask = event_mask(sampler.events)
            for granularity in granularities:
                sums[technique][granularity] += error_at_granularity(
                    profile, golden, program, granularity, mask
                )
    n = len(names)
    return GranularityResult(
        mean_errors={
            t: {g: s / n for g, s in by_g.items()}
            for t, by_g in sums.items()
        }
    )


def format_result(result: GranularityResult) -> str:
    """Render the Fig 9 table (rows: technique; cols: granularity)."""
    grans = list(next(iter(result.mean_errors.values())))
    headers = ["technique"] + [g.value for g in grans]
    rows = [
        [t] + [f"{by_g[g]:6.1%}" for g in grans]
        for t, by_g in result.mean_errors.items()
    ]
    return format_table(
        headers,
        rows,
        title="Fig 9: mean PICS error by analysis granularity",
    )
