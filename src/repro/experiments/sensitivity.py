"""Microarchitectural sensitivity studies around the TEA results.

Two studies that probe the *mechanisms* behind the paper's case-study
narratives rather than the sampling techniques themselves:

1. **ROB size** -- the lbm analysis hinges on the claim that "the body
   of the inner loop contains sufficient compute instructions to fill
   the ROB and hence blocks the processor from issuing the loads of the
   next iteration". Growing the ROB should therefore recover memory-
   level parallelism and shrink the critical load's exposed latency,
   while shrinking it makes things worse.

2. **Store-queue size** -- Fig 11's post-prefetch bottleneck is the
   store queue (DR-SQ); growing it should delay the DR-SQ wall.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.core.events import Event
from repro.core.psv import psv_has
from repro.experiments.runner import format_table
from repro.uarch.config import CoreConfig
from repro.uarch.core import simulate
from repro.workloads import build


@dataclass
class SensitivityPoint:
    """One configuration point of a sweep."""

    value: int
    cycles: int
    ipc: float
    critical_share: float  # tallest instruction's share of time
    dr_sq_share: float  # share of cycles in DR-SQ categories


@dataclass
class SensitivityResult:
    """A one-parameter sweep on one workload."""

    parameter: str
    workload: str
    points: list[SensitivityPoint]


def _measure(workload, config: CoreConfig, value: int) -> SensitivityPoint:
    result = simulate(
        workload.program, config=config,
        arch_state=workload.fresh_state(),
    )
    golden = result.golden_profile()
    total = golden.total()
    top = golden.top_units(1)[0]
    dr_sq = sum(
        cycles
        for stack in golden.stacks.values()
        for psv, cycles in stack.items()
        if psv_has(psv, Event.DR_SQ)
    )
    return SensitivityPoint(
        value=value,
        cycles=result.cycles,
        ipc=result.ipc,
        critical_share=golden.height(top) / total,
        dr_sq_share=dr_sq / total,
    )


def rob_size_sweep(
    sizes: tuple[int, ...] = (48, 96, 192, 384, 768),
    workload_name: str = "lbm",
    scale: float = 1.0,
) -> SensitivityResult:
    """Sweep the out-of-order *window* on the lbm kernel.

    The issue queues and load/store queues scale with the ROB (as they
    do across real core generations) so the sweep measures the paper's
    mechanism -- how much of the next iterations the window can hold --
    rather than whichever single queue happens to clip first.
    """
    workload = build(workload_name, scale=scale)
    baseline = CoreConfig()
    points = []
    for size in sizes:
        factor = size / baseline.rob_entries
        config = CoreConfig()
        config.rob_entries = size
        config.int_queue_entries = max(
            8, int(baseline.int_queue_entries * factor)
        )
        config.mem_queue_entries = max(
            8, int(baseline.mem_queue_entries * factor)
        )
        config.fp_queue_entries = max(
            8, int(baseline.fp_queue_entries * factor)
        )
        config.load_queue_entries = max(
            8, int(baseline.load_queue_entries * factor)
        )
        config.store_queue_entries = max(
            8, int(baseline.store_queue_entries * factor)
        )
        points.append(_measure(workload, config, size))
    return SensitivityResult(
        parameter="rob_entries", workload=workload_name, points=points
    )


def store_queue_sweep(
    sizes: tuple[int, ...] = (8, 16, 32, 64, 128),
    workload_name: str = "lbm",
    scale: float = 1.0,
    prefetch_distance: int = 3,
) -> SensitivityResult:
    """Sweep the store-queue size on prefetched lbm (mechanism 2)."""
    workload = build(
        workload_name, scale=scale, prefetch_distance=prefetch_distance
    )
    points = []
    for size in sizes:
        config = CoreConfig()
        config.store_queue_entries = size
        points.append(_measure(workload, config, size))
    return SensitivityResult(
        parameter="store_queue_entries",
        workload=workload.name,
        points=points,
    )


def format_result(result: SensitivityResult) -> str:
    """Render a sensitivity sweep as a table."""
    headers = [
        result.parameter, "cycles", "IPC", "critical share",
        "DR-SQ share",
    ]
    rows = [
        [
            str(p.value),
            f"{p.cycles:,}",
            f"{p.ipc:.2f}",
            f"{p.critical_share:6.1%}",
            f"{p.dr_sq_share:6.1%}",
        ]
        for p in result.points
    ]
    return format_table(
        headers,
        rows,
        title=f"Sensitivity: {result.workload} vs {result.parameter}",
    )
