"""Figs 10-11: the lbm software-prefetching case study.

Fig 10: TEA's PICS identify the performance-critical first load of the
inner loop and explain it (always misses the LLC, latency not hidden);
IBS misattributes the time to instructions that happen to dispatch while
that load stalls commit.

Fig 11: sweeping the software-prefetch distance moves the bottleneck
from load latency (ST-LLC on the critical load shrinking, saturating
around distance 3-4) to store bandwidth (DR-SQ categories on the store
growing), with end-to-end speedup peaking where they balance (paper:
distance 3, 1.28x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Event
from repro.core.pics import PicsProfile
from repro.core.psv import psv_has
from repro.core.report import render_comparison
from repro.experiments.runner import ExperimentRunner, format_table
from repro.isa.opcodes import MEMORY_READ_OPS, MEMORY_WRITE_OPS

#: Prefetch distances swept in Fig 11.
DISTANCES = (0, 1, 2, 3, 4, 5, 6)


def _top_index_by_kind(
    profile: PicsProfile, program, kinds
) -> int:
    """The tallest-stack instruction of a given opcode kind."""
    best, best_height = -1, -1.0
    for unit in profile.units():
        if program[unit].op not in kinds:
            continue
        height = profile.height(unit)
        if height > best_height:
            best, best_height = int(unit), height
    return best


@dataclass
class LbmPics:
    """Fig 10: profiles and the critical load for one lbm binary."""

    golden: PicsProfile
    tea: PicsProfile
    ibs: PicsProfile
    critical_load: int
    program: object


@dataclass
class PrefetchPoint:
    """One Fig 11 sweep point."""

    distance: int
    cycles: int
    speedup: float
    load_stack: dict[str, float]  # critical load: signature -> cycles
    store_stack: dict[str, float]  # critical store: signature -> cycles
    load_share: float  # critical load height / total cycles
    store_share: float
    dr_sq_cycles: float  # total cycles in DR-SQ-containing categories


@dataclass
class LbmResult:
    """Both halves of the lbm case study."""

    pics: LbmPics
    sweep: list[PrefetchPoint]

    @property
    def best_distance(self) -> int:
        """Distance with the highest speedup."""
        return max(self.sweep, key=lambda p: p.speedup).distance

    @property
    def best_speedup(self) -> float:
        """Best speedup over the non-prefetching binary."""
        return max(p.speedup for p in self.sweep)


def run(
    runner: ExperimentRunner | None = None,
    distances: tuple[int, ...] = DISTANCES,
) -> LbmResult:
    """Run the lbm case study (Figs 10 and 11)."""
    runner = runner or ExperimentRunner()
    base = runner.run("lbm")
    golden = base.golden
    program = base.workload.program
    critical_load = _top_index_by_kind(golden, program, MEMORY_READ_OPS)
    pics = LbmPics(
        golden=golden,
        tea=base.profile("TEA"),
        ibs=base.profile("IBS"),
        critical_load=critical_load,
        program=program,
    )

    base_cycles = base.result.cycles
    sweep: list[PrefetchPoint] = []
    for distance in distances:
        if distance == 0:
            bench = base
        else:
            bench = runner.run("lbm", prefetch_distance=distance)
        bench_golden = bench.golden
        bench_program = bench.workload.program
        load = _top_index_by_kind(
            bench_golden, bench_program, MEMORY_READ_OPS
        )
        store = _top_index_by_kind(
            bench_golden, bench_program, MEMORY_WRITE_OPS
        )
        total = bench_golden.total()
        dr_sq = sum(
            cycles
            for stack in bench_golden.stacks.values()
            for psv, cycles in stack.items()
            if psv_has(psv, Event.DR_SQ)
        )
        sweep.append(
            PrefetchPoint(
                distance=distance,
                cycles=bench.result.cycles,
                speedup=base_cycles / bench.result.cycles,
                load_stack=bench_golden.named_stack(load),
                store_stack=bench_golden.named_stack(store),
                load_share=bench_golden.height(load) / total,
                store_share=bench_golden.height(store) / total,
                dr_sq_cycles=dr_sq,
            )
        )
    return LbmResult(pics=pics, sweep=sweep)


def format_fig10(result: LbmResult) -> str:
    """Render Fig 10: critical-load PICS, golden vs TEA vs IBS."""
    pics = result.pics
    header = (
        "Fig 10: lbm critical load "
        f"(instruction {pics.critical_load}: "
        f"{pics.program[pics.critical_load].disasm()})"
    )
    return header + "\n" + render_comparison(
        [pics.golden, pics.tea, pics.ibs],
        pics.critical_load,
        program=pics.program,
    )


def format_fig11(result: LbmResult) -> str:
    """Render Fig 11: the prefetch-distance sweep."""
    headers = [
        "distance",
        "cycles",
        "speedup",
        "load share",
        "store share",
        "DR-SQ cycles",
    ]
    rows = [
        [
            str(p.distance),
            str(p.cycles),
            f"{p.speedup:5.2f}x",
            f"{p.load_share:6.1%}",
            f"{p.store_share:6.1%}",
            f"{p.dr_sq_cycles:,.0f}",
        ]
        for p in result.sweep
    ]
    table = format_table(
        headers,
        rows,
        title="Fig 11: lbm software-prefetch distance sweep",
    )
    return (
        table
        + f"\nbest distance: {result.best_distance} "
        f"(speedup {result.best_speedup:.2f}x; paper: distance 3, 1.28x)"
    )
