"""Section 3-4 overheads: storage, power, run-time, stall coverage, and
the golden reference's data volume.

Paper values on the baseline configuration: 249 B TEA storage (306 B
with TIP), ~3.2 mW / ~0.1% power, 1.1% run-time overhead at 4 kHz, 99% of
event-free stalls under 5.8 cycles, and 2.7 PB / 116 GB/s of golden-
reference data for full SPEC CPU2017 runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.correlation import StallCoverage, merged_stall_coverage
from repro.core.overhead import (
    GoldenDataVolume,
    PowerOverhead,
    SAMPLE_BYTES,
    StorageOverhead,
    frequency_to_period,
    golden_data_volume,
    performance_overhead,
    storage_table,
    tea_power,
    tea_storage,
    total_storage_with_tip,
)
from repro.experiments.runner import ExperimentRunner, format_table
from repro.workloads import WORKLOAD_NAMES


@dataclass
class OverheadResult:
    """All Section 3-4 overhead numbers."""

    storage: StorageOverhead
    storage_with_tip: int
    per_technique_storage: dict[str, int]
    power: PowerOverhead
    runtime_overhead_4khz: float
    stall_coverage: StallCoverage
    golden_volume: GoldenDataVolume


def run(
    runner: ExperimentRunner | None = None,
    names: tuple[str, ...] = WORKLOAD_NAMES,
) -> OverheadResult:
    """Compute analytic overheads + measured stall coverage/volume."""
    runner = runner or ExperimentRunner()
    histograms = []
    committed = cycles = 0
    for name in names:
        bench = runner.run(name)
        histograms.append(dict(bench.result.stall_histogram))
        committed += bench.result.committed
        cycles += bench.result.cycles
    return OverheadResult(
        storage=tea_storage(runner.config),
        storage_with_tip=total_storage_with_tip(runner.config),
        per_technique_storage=storage_table(runner.config),
        power=tea_power(runner.config),
        runtime_overhead_4khz=performance_overhead(frequency_to_period(4)),
        stall_coverage=merged_stall_coverage(histograms),
        golden_volume=golden_data_volume(committed, cycles),
    )


def format_result(result: OverheadResult) -> str:
    """Render the Section 3-4 overhead summary."""
    s = result.storage
    rows = [
        ["fetch buffer (DR-L1/DR-TLB bits)", f"{s.fetch_buffer_bytes} B"],
        ["ROB (9-bit PSVs)", f"{s.rob_bytes} B"],
        ["front-end registers", f"{s.frontend_regs_bytes} B"],
        ["dispatch (DR-SQ bit)", f"{s.dispatch_reg_bytes} B"],
        ["LSU (ST-TLB bits)", f"{s.lsu_bytes} B"],
        ["last-committed PSV", f"{s.last_committed_bytes} B"],
        ["TEA total", f"{s.total_bytes} B (paper: 249 B)"],
        ["TEA + TIP", f"{result.storage_with_tip} B (paper: 306 B)"],
        [
            "ROB+fetch-buffer share",
            f"{s.rob_and_fetch_buffer_fraction:.1%} (paper: 91.7%)",
        ],
        [
            "power",
            f"{result.power.milliwatts:.1f} mW / "
            f"{result.power.core_fraction:.2%} of core "
            "(paper: ~3.2 mW / ~0.1%)",
        ],
        [
            "run-time overhead @4 kHz",
            f"{result.runtime_overhead_4khz:.1%} (paper: 1.1%)",
        ],
        [
            "sample size",
            f"{SAMPLE_BYTES} B (inherited from TIP)",
        ],
        [
            "event-free stall p99",
            f"{result.stall_coverage.p99:.1f} cycles over "
            f"{result.stall_coverage.episodes} episodes "
            "(paper: 5.8 cycles)",
        ],
        [
            "golden data volume",
            f"{result.golden_volume.total_bytes / 1e6:.1f} MB at "
            f"{result.golden_volume.bytes_per_second / 1e9:.1f} GB/s "
            "(paper, full SPEC: 2.7 PB at 116 GB/s)",
        ],
    ]
    table = format_table(
        ["quantity", "value"], rows, title="Sections 3-4: overheads"
    )
    tagger_rows = [
        [name, f"{size} B"]
        for name, size in result.per_technique_storage.items()
    ]
    return (
        table
        + "\n\n"
        + format_table(
            ["technique", "storage"],
            tagger_rows,
            title="Per-technique storage",
        )
    )
