"""TIP vs TEA: profiling alone answers Q1 but not Q2 (paper Sections
1-2).

TIP (the paper's baseline, MICRO 2021) uses the same time-proportional
attribution as TEA but carries no PSVs. Measured against the golden
reference with the event dimension *erased* (mask 0), TIP and TEA are
equally accurate -- both answer Q1, "which instructions take time".
Measured against the full event-aware golden reference, TIP's stacks are
all Base: the gap between its two errors is precisely the Q2 information
("why") that TEA adds for 242 extra bytes of state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.error import pics_error
from repro.core.events import FULL_MASK
from repro.experiments.runner import ExperimentRunner, format_table
from repro.workloads import WORKLOAD_NAMES


@dataclass
class TipComparison:
    """Q1-only and full (Q1+Q2) errors for TIP and TEA."""

    q1_errors: dict[str, dict[str, float]]  # benchmark -> technique -> e
    full_errors: dict[str, dict[str, float]]

    def mean(self, table: str, technique: str) -> float:
        """Mean error over benchmarks for one technique/table."""
        data = self.q1_errors if table == "q1" else self.full_errors
        values = [row[technique] for row in data.values()]
        return sum(values) / len(values)


def run(
    runner: ExperimentRunner | None = None,
    names: tuple[str, ...] = WORKLOAD_NAMES,
) -> TipComparison:
    """Run the TIP-vs-TEA comparison."""
    if runner is None:
        runner = ExperimentRunner(techniques=("TEA", "TIP"))
    q1: dict[str, dict[str, float]] = {}
    full: dict[str, dict[str, float]] = {}
    for name in names:
        bench = runner.run(name)
        golden = bench.golden
        q1[name] = {}
        full[name] = {}
        for technique in ("TEA", "TIP"):
            profile = bench.samplers[technique].profile()
            # Q1: collapse the event dimension entirely.
            q1[name][technique] = pics_error(profile, golden, 0)
            # Q1+Q2: the full event-aware comparison.
            full[name][technique] = pics_error(
                profile, golden, FULL_MASK
            )
    return TipComparison(q1_errors=q1, full_errors=full)


def format_result(result: TipComparison) -> str:
    """Render the comparison table."""
    headers = [
        "benchmark", "TIP Q1", "TEA Q1", "TIP Q1+Q2", "TEA Q1+Q2",
    ]
    rows = []
    for name in sorted(result.q1_errors):
        rows.append(
            [
                name,
                f"{result.q1_errors[name]['TIP']:6.1%}",
                f"{result.q1_errors[name]['TEA']:6.1%}",
                f"{result.full_errors[name]['TIP']:6.1%}",
                f"{result.full_errors[name]['TEA']:6.1%}",
            ]
        )
    rows.append(
        [
            "average",
            f"{result.mean('q1', 'TIP'):6.1%}",
            f"{result.mean('q1', 'TEA'):6.1%}",
            f"{result.mean('full', 'TIP'):6.1%}",
            f"{result.mean('full', 'TEA'):6.1%}",
        ]
    )
    return format_table(
        headers,
        rows,
        title="TIP vs TEA: profiling answers Q1; only PICS answer Q2",
    )
