"""Fig 6: PICS of the top-3 instructions -- IBS vs TEA vs golden.

The paper shows bwaves, omnetpp, fotonik3d (illustrating solitary vs
combined events) and exchange2 (IBS's best case); IBS stands in for SPE
and RIS. The reproduction targets: TEA's stacks match the golden
reference closely in height and composition; IBS's do not; bwaves and
omnetpp show combined cache+TLB components, fotonik3d cache-only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pics import PicsProfile
from repro.core.report import render_comparison, unit_label
from repro.experiments.runner import ExperimentRunner

#: Benchmarks shown in Fig 6.
FIG6_BENCHMARKS = ("bwaves", "omnetpp", "fotonik3d", "exchange2")


@dataclass
class TopInstructionsResult:
    """Per-benchmark top-3 instruction stacks for each technique."""

    benchmark: str
    top_indices: list[int]
    golden: PicsProfile
    tea: PicsProfile
    ibs: PicsProfile

    def stack_heights(self, technique: str) -> list[float]:
        """Stack heights of the top instructions for one technique,
        normalised to that profile's total (comparable across samplers).
        """
        profile = {"golden": self.golden, "TEA": self.tea,
                   "IBS": self.ibs}[technique]
        total = profile.total()
        return [profile.height(i) / total for i in self.top_indices]


def run(
    runner: ExperimentRunner | None = None,
    names: tuple[str, ...] = FIG6_BENCHMARKS,
    top_n: int = 3,
) -> dict[str, TopInstructionsResult]:
    """Run the Fig 6 experiment."""
    runner = runner or ExperimentRunner()
    results = {}
    for name in names:
        bench = runner.run(name)
        golden = bench.golden
        results[name] = TopInstructionsResult(
            benchmark=name,
            top_indices=[int(u) for u in golden.top_units(top_n)],
            golden=golden,
            tea=bench.profile("TEA"),
            ibs=bench.profile("IBS"),
        )
    return results


def format_result(results: dict[str, TopInstructionsResult]) -> str:
    """Render Fig 6: top-3 stacks per benchmark for GR, TEA, IBS."""
    parts = ["Fig 6: PICS for the top-3 instructions (GR vs TEA vs IBS)"]
    for name, result in results.items():
        parts.append(f"\n=== {name} ===")
        program = None
        for index in result.top_indices:
            parts.append(
                render_comparison(
                    [result.golden, result.tea, result.ibs],
                    index,
                    program=program,
                )
            )
    return "\n".join(parts)
