"""Fig 7: correlation between event counts and performance impact.

The paper's finding: flush events (FL-MB, FL-EX, FL-MO) correlate
strongly with their performance impact (flushes are rarely hidden);
cache/TLB misses only moderately (partially hidden, ST-LLC more than
ST-L1); store-queue stalls (DR-SQ) least and with the largest spread.
This is the quantitative argument for why event *counting* misleads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.correlation import BoxStats, correlation_boxes
from repro.core.events import Event
from repro.experiments.runner import ExperimentRunner, format_table
from repro.workloads import WORKLOAD_NAMES


@dataclass
class CorrelationResult:
    """Per-event box statistics of Pearson r across benchmarks."""

    boxes: dict[Event, BoxStats]
    combined_fraction: float  # Sec 5.1: ~30% of evented execs combined


def run(
    runner: ExperimentRunner | None = None,
    names: tuple[str, ...] = WORKLOAD_NAMES,
) -> CorrelationResult:
    """Run the Fig 7 experiment."""
    runner = runner or ExperimentRunner()
    per_benchmark = {}
    evented = combined = 0
    for name in names:
        bench = runner.run(name)
        per_benchmark[name] = (bench.golden, bench.result.event_counts)
        evented += bench.result.evented_execs
        combined += bench.result.combined_execs
    return CorrelationResult(
        boxes=correlation_boxes(per_benchmark),
        combined_fraction=combined / evented if evented else 0.0,
    )


def format_result(result: CorrelationResult) -> str:
    """Render the Fig 7 box-plot table."""
    headers = ["event", "min", "q1", "median", "q3", "max", "n"]
    rows = []
    for event in Event:
        box = result.boxes.get(event)
        if box is None:
            rows.append([event.display_name] + ["--"] * 5 + ["0"])
            continue
        rows.append(
            [
                event.display_name,
                f"{box.minimum:+.2f}",
                f"{box.q1:+.2f}",
                f"{box.median:+.2f}",
                f"{box.q3:+.2f}",
                f"{box.maximum:+.2f}",
                str(box.n),
            ]
        )
    table = format_table(
        headers,
        rows,
        title="Fig 7: Pearson r between event count and impact "
        "(box stats across benchmarks)",
    )
    return (
        table
        + f"\ncombined-event fraction of evented executions: "
        f"{result.combined_fraction:.1%} (paper: 30.0%)"
    )
