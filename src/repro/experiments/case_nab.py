"""Fig 12: the nab IEEE-754-compliance case study.

TEA's PICS show (i) the serializing fsflags/frflags-style ops carrying
FL-EX flush cycles and (ii) the fsqrt carrying event-free stall cycles --
its execution latency is exposed because the flush prevented it from
issuing early. Because TEA is trustworthy, a developer can conclude no
microarchitectural event is to blame and look at the instruction
ordering instead. Removing the serializing ops (-finite-math /
-fast-math) yields the paper's 1.96x / 2.45x speedups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Event
from repro.core.pics import PicsProfile
from repro.core.psv import psv_has
from repro.core.report import render_comparison
from repro.experiments.runner import ExperimentRunner
from repro.isa.opcodes import OpClass, Opcode


@dataclass
class NabResult:
    """The nab case study: PICS and the fast-math speedup."""

    golden: PicsProfile
    tea: PicsProfile
    ibs: PicsProfile
    program: object
    fsqrt_index: int
    serial_indices: list[int]
    base_cycles: int
    fast_cycles: int

    @property
    def speedup(self) -> float:
        """Speedup of the fast-math binary (paper: 1.96x-2.45x)."""
        return self.base_cycles / self.fast_cycles

    def fsqrt_share(self, profile_name: str = "golden") -> float:
        """The fsqrt instruction's share of execution time."""
        profile = {"golden": self.golden, "TEA": self.tea,
                   "IBS": self.ibs}[profile_name]
        total = profile.total()
        return profile.height(self.fsqrt_index) / total if total else 0.0

    def flush_cycles(self) -> float:
        """Golden cycles in FL-EX categories (the serializing ops)."""
        return sum(
            cycles
            for stack in self.golden.stacks.values()
            for psv, cycles in stack.items()
            if psv_has(psv, Event.FL_EX)
        )


def run(runner: ExperimentRunner | None = None) -> NabResult:
    """Run the nab case study."""
    runner = runner or ExperimentRunner()
    base = runner.run("nab")
    fast = runner.run("nab", fast_math=True)
    program = base.workload.program
    fsqrt_index = next(
        inst.index for inst in program if inst.op == Opcode.FSQRT
    )
    serial_indices = [
        inst.index for inst in program if inst.op == Opcode.SERIAL
    ]
    return NabResult(
        golden=base.golden,
        tea=base.profile("TEA"),
        ibs=base.profile("IBS"),
        program=program,
        fsqrt_index=fsqrt_index,
        serial_indices=serial_indices,
        base_cycles=base.result.cycles,
        fast_cycles=fast.result.cycles,
    )


def format_result(result: NabResult) -> str:
    """Render Fig 12: the fsqrt/serializing-op PICS and the speedup."""
    parts = [
        "Fig 12: nab critical fsqrt "
        f"(instruction {result.fsqrt_index})",
        render_comparison(
            [result.golden, result.tea, result.ibs],
            result.fsqrt_index,
            program=result.program,
        ),
        "",
        "Serializing (fsflags/frflags-style) ops:",
    ]
    for index in result.serial_indices:
        parts.append(
            render_comparison([result.golden, result.tea], index,
                              program=result.program)
        )
    parts.append(
        f"\nfast-math speedup: {result.speedup:.2f}x "
        "(paper: 1.96x with -finite-math, 2.45x with -fast-math)"
    )
    return "\n".join(parts)
