"""Versioned on-disk store for completed simulation runs.

Stored runs are JSON payloads (see :mod:`repro.engine.runs`) addressed
by the :class:`~repro.engine.spec.RunSpec` content hash, laid out as
``<root>/runs-v<N>/<key[:2]>/<key>.json``. Because the spec hash covers
:data:`~repro.engine.spec.MODEL_VERSION`, stale runs from an older
timing model simply never match; the payload-level schema and version
checks are a second line of defence against hand-edited files.

The default root is ``$TEA_REPRO_STORE`` or ``~/.cache/tea-repro``.
Writes are atomic (temp file + rename), so concurrent executor workers
and parallel CLI invocations can share one store safely.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from collections.abc import Iterator
from typing import Any

from repro.engine.runs import PAYLOAD_SCHEMA
from repro.engine.spec import RunSpec
from repro.version import MODEL_VERSION

#: On-disk layout revision (bump on path-layout changes).
STORE_VERSION = 1

#: Environment variable overriding the default store root.
STORE_ENV = "TEA_REPRO_STORE"

#: Schema identifier stamped into every trace sidecar's meta block.
TRACE_SCHEMA = "tea-trace-v1"


def default_store_root() -> Path:
    """The default store root (env override or ``~/.cache/tea-repro``)."""
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "tea-repro"


class RunStore:
    """A spec-keyed, versioned store of completed run payloads.

    Args:
        root: Store root directory; defaults to
            :func:`default_store_root`.

    Attributes:
        hits: Number of successful :meth:`load` calls.
        misses: Number of :meth:`load` calls that found nothing usable.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.runs_dir = self.root / f"runs-v{STORE_VERSION}"
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: RunSpec) -> Path:
        """The on-disk path a spec's payload lives at."""
        return self.runs_dir / spec.key[:2] / f"{spec.key}.json"

    def contains(self, spec: RunSpec) -> bool:
        """Cheap existence probe for *spec* (no parse, no accounting).

        Used for resume status reporting; a corrupt or stale file can
        make this optimistic -- :meth:`load` remains the authority.
        """
        return self.path_for(spec).is_file()

    def load(self, spec: RunSpec) -> dict[str, Any] | None:
        """The stored payload for *spec*, or ``None`` on a miss.

        Corrupt, truncated, or version-mismatched files count as misses
        (they will be overwritten by the next :meth:`save`).
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            payload.get("schema") != PAYLOAD_SCHEMA
            or payload.get("model_version") != MODEL_VERSION
            or payload.get("spec_key") != spec.key
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def save(self, spec: RunSpec, payload: dict[str, Any]) -> Path:
        """Atomically persist *payload* under *spec*'s key."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- columnar trace sidecars ---------------------------------------
    def trace_path_for(self, spec: RunSpec) -> Path:
        """The sidecar path a spec's columnar trace lives at.

        Traces sit next to the payload (same shard, same key) with a
        ``.teacol`` suffix, so :meth:`clear` and key-based tooling see
        both artefacts of a run together.
        """
        return self.runs_dir / spec.key[:2] / f"{spec.key}.teacol"

    def has_trace(self, spec: RunSpec) -> bool:
        """Cheap existence probe for a spec's trace sidecar."""
        return self.trace_path_for(spec).is_file()

    def save_trace(self, spec: RunSpec, store: Any) -> Path:
        """Atomically persist a :class:`~repro.trace.store.TraceStore`.

        Stamps ``meta`` with the schema/version/key triple
        :meth:`load_trace` validates against.
        """
        store.meta.update(
            {
                "schema": TRACE_SCHEMA,
                "model_version": MODEL_VERSION,
                "spec_key": spec.key,
            }
        )
        path = self.trace_path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".teacol"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(store.to_bytes())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def load_trace(self, spec: RunSpec, use_mmap: bool = True):
        """The stored trace for *spec*, or ``None`` on a miss.

        Corrupt or stale sidecars (schema / model version / spec key
        mismatch) count as misses, exactly like :meth:`load`.
        """
        from repro.trace.store import TraceStore

        path = self.trace_path_for(spec)
        try:
            store = TraceStore.load(path, use_mmap=use_mmap)
        except (OSError, ValueError, RuntimeError):
            self.misses += 1
            return None
        meta = store.meta
        if (
            meta.get("schema") != TRACE_SCHEMA
            or meta.get("model_version") != MODEL_VERSION
            or meta.get("spec_key") != spec.key
        ):
            store.close()
            self.misses += 1
            return None
        self.hits += 1
        return store

    def keys(self) -> Iterator[str]:
        """Keys of every stored run."""
        if not self.runs_dir.is_dir():
            return
        for path in sorted(self.runs_dir.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def size_bytes(self) -> int:
        """Total bytes of stored payloads."""
        if not self.runs_dir.is_dir():
            return 0
        return sum(
            path.stat().st_size
            for path in self.runs_dir.glob("*/*.json")
        )

    def clear(self) -> None:
        """Delete every stored run (the root directory is kept)."""
        shutil.rmtree(self.runs_dir, ignore_errors=True)
