"""The simulation engine: memo -> store -> simulate orchestration.

:class:`Engine` is the single entry point every experiment, CLI
command, and benchmark script funnels through. For each
:class:`~repro.engine.spec.RunSpec` it serves, in order of cheapness:

1. the in-process memo (same object back, as experiments rely on),
2. the on-disk :class:`~repro.engine.store.RunStore` (cross-process
   cache hits, reconstructed bit-identically from the stored payload),
3. a fresh simulation -- in-process, or fanned out over a
   :class:`~repro.engine.executor.SuiteExecutor` worker pool for suite
   runs with ``jobs > 1``.

Every run is recorded to the attached
:class:`~repro.engine.telemetry.RunLog` with its source, so "how much
did the cache save" is always answerable after the fact.
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.engine.executor import SuiteExecutor
from repro.engine.runs import (
    BenchmarkRun,
    build_workload,
    run_from_payload,
    run_to_payload,
    simulate_spec,
)
from repro.engine.spec import RunSpec
from repro.engine.store import RunStore
from repro.engine.telemetry import RunLog, RunMetrics


class Engine:
    """Spec-keyed simulation engine with store, memo, and telemetry.

    Args:
        store: On-disk run store (``None`` disables persistence).
        run_log: JSONL telemetry sink (``None`` disables logging).
        jobs: Default worker count for :meth:`run_suite`.
        retries: Per-run retry attempts for suite execution.

    Attributes:
        simulations: Number of fresh simulations this engine performed
            (both in-process and via workers).
    """

    def __init__(
        self,
        store: RunStore | None = None,
        run_log: RunLog | None = None,
        jobs: int = 1,
        retries: int = 1,
    ) -> None:
        self.store = store
        self.run_log = run_log
        self.jobs = max(1, int(jobs))
        self.retries = retries
        self.simulations = 0
        self._memo: dict[str, BenchmarkRun] = {}

    # ------------------------------------------------------------------
    # Single runs.
    # ------------------------------------------------------------------
    def cached(self, spec: RunSpec) -> BenchmarkRun | None:
        """The memoised run for *spec*, if any (no store probe)."""
        return self._memo.get(spec.key)

    def run(self, spec: RunSpec) -> BenchmarkRun:
        """Serve one spec: memo, then store, then simulate."""
        run = self._memo.get(spec.key)
        if run is not None:
            self._record(spec, run, "memo", 0.0)
            return run
        start = time.perf_counter()
        workload = build_workload(spec)
        payload = (
            self.store.load(spec) if self.store is not None else None
        )
        if payload is not None:
            run = run_from_payload(payload, workload)
            source = "store"
        else:
            run = simulate_spec(spec, workload)
            self.simulations += 1
            source = "simulated"
            if self.store is not None:
                self.store.save(spec, run_to_payload(spec, run))
        self._memo[spec.key] = run
        self._record(spec, run, source, time.perf_counter() - start)
        return run

    # ------------------------------------------------------------------
    # Suite runs.
    # ------------------------------------------------------------------
    def run_suite(
        self,
        specs: Mapping[str, RunSpec],
        jobs: int | None = None,
    ) -> dict[str, BenchmarkRun]:
        """Serve a labelled suite of specs, fanning misses out.

        Memo and store hits are served inline; the remaining specs are
        executed via a :class:`SuiteExecutor` when more than one worker
        is requested, otherwise serially in-process. The result maps
        every label in *specs* (in input order) to its run.

        Raises:
            SuiteExecutionError: If any run fails after retries; the
                error names each failing label.
        """
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        runs: dict[str, BenchmarkRun] = {}
        pending: dict[str, RunSpec] = {}
        for label, spec in specs.items():
            run = self._memo.get(spec.key)
            if run is not None:
                self._record(spec, run, "memo", 0.0)
                runs[label] = run
            elif jobs <= 1:
                runs[label] = self.run(spec)
            else:
                pending[label] = spec

        if pending:
            # Probe the store before paying for workers.
            missing: dict[str, RunSpec] = {}
            seen_keys: dict[str, str] = {}
            for label, spec in pending.items():
                if spec.key in seen_keys or spec.key in self._memo:
                    continue  # duplicate spec; resolved below
                start = time.perf_counter()
                payload = (
                    self.store.load(spec)
                    if self.store is not None
                    else None
                )
                if payload is not None:
                    run = run_from_payload(payload, build_workload(spec))
                    self._memo[spec.key] = run
                    self._record(
                        spec, run, "store", time.perf_counter() - start
                    )
                else:
                    missing[label] = spec
                    seen_keys[spec.key] = label

            if missing:
                executor = SuiteExecutor(jobs=jobs, retries=self.retries)
                payloads = executor.map(list(missing.items()))
                for label, payload in payloads.items():
                    spec = missing[label]
                    run = run_from_payload(payload, build_workload(spec))
                    self.simulations += 1
                    if self.store is not None:
                        self.store.save(spec, payload)
                    self._memo[spec.key] = run
                    self._record(
                        spec,
                        run,
                        "simulated",
                        float(payload.get("wall_s") or 0.0),
                        jobs=jobs,
                    )

            for label, spec in pending.items():
                run = self._memo.get(spec.key)
                if run is not None:
                    runs[label] = run

        return {label: runs[label] for label in specs}

    # ------------------------------------------------------------------
    # Telemetry.
    # ------------------------------------------------------------------
    def _record(
        self,
        spec: RunSpec,
        run: BenchmarkRun,
        source: str,
        wall_s: float,
        jobs: int = 1,
    ) -> None:
        if self.run_log is None:
            return
        self.run_log.record(
            RunMetrics(
                workload=spec.workload,
                spec_key=spec.key,
                source=source,
                wall_s=wall_s,
                cycles=run.result.cycles,
                committed=run.result.committed,
                samples={
                    key: sampler.samples_taken
                    for key, sampler in run.samplers.items()
                },
                jobs=jobs,
            )
        )
