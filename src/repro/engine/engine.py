"""The simulation engine: memo -> store -> simulate orchestration.

:class:`Engine` is the single entry point every experiment, CLI
command, and benchmark script funnels through. For each
:class:`~repro.engine.spec.RunSpec` it serves, in order of cheapness:

1. the in-process memo (same object back, as experiments rely on),
2. the on-disk :class:`~repro.engine.store.RunStore` (cross-process
   cache hits, reconstructed bit-identically from the stored payload),
3. a fresh simulation via the fault-tolerant
   :class:`~repro.engine.executor.SuiteExecutor` -- serial in-process
   for ``jobs=1``, fanned out over a worker pool otherwise, with
   retries, backoff, per-attempt timeouts, and pool recovery either
   way.

Suite runs checkpoint as they go: each completed payload is flushed to
the store the moment it lands, so an interrupted or partially failed
suite resumes from the store and re-simulates only what is missing.
With ``keep_going`` a failing suite returns its partial results and
leaves the full :class:`~repro.engine.executor.SuiteReport` on
:attr:`Engine.last_suite_report` instead of raising.

Every run is recorded to the attached
:class:`~repro.engine.telemetry.RunLog` with its source, so "how much
did the cache save" is always answerable after the fact.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from typing import Any

from repro import obs
from repro.engine.executor import (
    SuiteExecutionError,
    SuiteExecutor,
    SuiteReport,
    simulate_to_payload,
)
from repro.engine.runs import (
    BenchmarkRun,
    build_workload,
    run_from_payload,
    run_to_payload,
    simulate_spec,
)
from repro.engine.spec import RunSpec
from repro.engine.store import RunStore
from repro.engine.telemetry import RunLog, RunMetrics


class Engine:
    """Spec-keyed simulation engine with store, memo, and telemetry.

    Args:
        store: On-disk run store (``None`` disables persistence).
        run_log: JSONL telemetry sink (``None`` disables logging).
        jobs: Default worker count for :meth:`run_suite`.
        retries: Per-run retry attempts for suite execution.
        timeout: Per-attempt wall-clock bound in seconds for parallel
            suite runs (``None`` disables it).
        backoff: Base seconds of the jittered exponential backoff
            between retry attempts of the same run.
        keep_going: Return partial suite results plus a
            :class:`SuiteReport` instead of raising on failures.
        worker_fn: Worker callable for suite execution; overridable
            for tests and fault injection.
        heartbeat: Worker heartbeat interval in seconds; ``None``
            disables live telemetry. When set, suite executions emit
            ``"kind": "heartbeat"`` and ``"kind": "resources"``
            records into the run log as they happen, and the parent
            flags silently stalled workers before their timeout.
        stall_after: Seconds of heartbeat silence before a running
            label is flagged stalled (default: four heartbeats).

    Attributes:
        simulations: Number of fresh simulations this engine performed
            (both in-process and via workers).
        last_suite_report: The :class:`SuiteReport` of the most recent
            :meth:`run_suite` that had to execute anything.
        last_monitor: The :class:`~repro.engine.monitor.SuiteMonitor`
            of that execution (``None`` unless *heartbeat* is set).
    """

    def __init__(
        self,
        store: RunStore | None = None,
        run_log: RunLog | None = None,
        jobs: int = 1,
        retries: int = 1,
        timeout: float | None = None,
        backoff: float = 0.0,
        keep_going: bool = False,
        worker_fn: Callable[
            [tuple[str, RunSpec]], tuple[str, dict[str, Any]]
        ] = simulate_to_payload,
        heartbeat: float | None = None,
        stall_after: float | None = None,
    ) -> None:
        self.store = store
        self.run_log = run_log
        self.jobs = max(1, int(jobs))
        self.retries = retries
        self.timeout = timeout
        self.backoff = backoff
        self.keep_going = bool(keep_going)
        self.worker_fn = worker_fn
        self.heartbeat = heartbeat
        self.stall_after = stall_after
        self.simulations = 0
        self.last_suite_report: SuiteReport | None = None
        self.last_monitor = None
        self._memo: dict[str, BenchmarkRun] = {}

    # ------------------------------------------------------------------
    # Single runs.
    # ------------------------------------------------------------------
    def cached(self, spec: RunSpec) -> BenchmarkRun | None:
        """The memoised run for *spec*, if any (no store probe)."""
        return self._memo.get(spec.key)

    def run(self, spec: RunSpec) -> BenchmarkRun:
        """Serve one spec: memo, then store, then simulate."""
        run = self._memo.get(spec.key)
        if run is not None:
            self._record(spec, run, "memo", 0.0)
            obs.COUNTERS.inc("engine.memo_hits")
            return run
        start = time.perf_counter()
        with obs.span(f"engine.run:{spec.workload}", key=spec.key):
            workload = build_workload(spec)
            payload = (
                self.store.load(spec) if self.store is not None else None
            )
            if payload is not None:
                run = run_from_payload(payload, workload)
                source = "store"
                obs.COUNTERS.inc("engine.store_hits")
            else:
                run = simulate_spec(spec, workload)
                self.simulations += 1
                source = "simulated"
                obs.COUNTERS.inc("engine.simulations")
                if self.store is not None:
                    self.store.save(spec, run_to_payload(spec, run))
        self._memo[spec.key] = run
        self._record(spec, run, source, time.perf_counter() - start)
        return run

    # ------------------------------------------------------------------
    # Suite runs.
    # ------------------------------------------------------------------
    def checkpointed(
        self, specs: Mapping[str, RunSpec]
    ) -> dict[str, bool]:
        """Which labelled specs already have a completed run.

        True when the spec is memoised in-process or has a stored
        payload on disk -- i.e. a resumed suite will not re-simulate
        it. Purely informational (no telemetry, no hit accounting).
        """
        status: dict[str, bool] = {}
        for label, spec in specs.items():
            status[label] = spec.key in self._memo or (
                self.store is not None and self.store.contains(spec)
            )
        return status

    def run_suite(
        self,
        specs: Mapping[str, RunSpec],
        jobs: int | None = None,
        keep_going: bool | None = None,
    ) -> dict[str, BenchmarkRun]:
        """Serve a labelled suite of specs, fanning misses out.

        Memo and store hits are served inline; the remaining specs are
        executed through a fault-tolerant :class:`SuiteExecutor`
        (in-process for one worker, a process pool otherwise).
        Completed payloads are flushed to the store *as they land*, so
        an interrupted suite re-simulates only what never finished.

        Returns every label in *specs* (in input order) mapped to its
        run -- or, with ``keep_going``, the labels that completed
        (partial results; the failure details live on
        :attr:`last_suite_report`).

        Raises:
            SuiteExecutionError: If any run fails after retries and
                ``keep_going`` is off; the error names each failing
                label and carries the worker-side tracebacks.
        """
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        keep_going = (
            self.keep_going if keep_going is None else keep_going
        )
        runs: dict[str, BenchmarkRun] = {}
        pending: dict[str, RunSpec] = {}
        for label, spec in specs.items():
            run = self._memo.get(spec.key)
            if run is not None:
                self._record(spec, run, "memo", 0.0)
                obs.COUNTERS.inc("engine.memo_hits")
                runs[label] = run
            else:
                pending[label] = spec

        if pending:
            # Probe the store before paying for execution: this is
            # also the resume path -- checkpointed runs load here and
            # never reach the executor.
            missing: dict[str, RunSpec] = {}
            seen_keys: set[str] = set()
            for label, spec in pending.items():
                if spec.key in seen_keys or spec.key in self._memo:
                    continue  # duplicate spec; resolved below
                start = time.perf_counter()
                payload = (
                    self.store.load(spec)
                    if self.store is not None
                    else None
                )
                if payload is not None:
                    run = run_from_payload(payload, build_workload(spec))
                    self._memo[spec.key] = run
                    obs.COUNTERS.inc("engine.store_hits")
                    self._record(
                        spec, run, "store", time.perf_counter() - start
                    )
                else:
                    missing[label] = spec
                    seen_keys.add(spec.key)

            if missing:
                with obs.span(
                    "engine.run_suite",
                    labels=len(missing),
                    jobs=jobs,
                ):
                    report = self._execute_missing(missing, jobs)
                self.last_suite_report = report
                if self.run_log is not None:
                    self.run_log.record_suite(report)
                if report.failed_labels and not keep_going:
                    raise SuiteExecutionError(report.failures, report)

            for label, spec in pending.items():
                run = self._memo.get(spec.key)
                if run is not None:
                    runs[label] = run

        return {
            label: runs[label] for label in specs if label in runs
        }

    def _execute_missing(
        self, missing: dict[str, RunSpec], jobs: int
    ) -> SuiteReport:
        """Execute the store-missing specs; memoise and checkpoint."""

        def flush(label: str, payload: dict[str, Any]) -> None:
            # Called as each payload lands: persist before anything
            # else can fail, so completed work survives an interrupted
            # or partially failed suite.
            spec = missing[label]
            run = run_from_payload(payload, build_workload(spec))
            self.simulations += 1
            obs.COUNTERS.inc("engine.simulations")
            if self.store is not None:
                self.store.save(spec, payload)
            self._memo[spec.key] = run

        executor = SuiteExecutor(
            jobs=jobs,
            retries=self.retries,
            fn=self.worker_fn,
            timeout=self.timeout,
            backoff=self.backoff,
            keep_going=True,  # the engine applies its own policy
            on_result=flush,
            heartbeat=self.heartbeat,
            stall_after=self.stall_after,
            on_event=self._live_event,
        )
        result = executor.execute(list(missing.items()))
        self.last_monitor = executor.monitor
        for label, payload in result.payloads.items():
            spec = missing[label]
            run = self._memo[spec.key]
            outcome = result.report.outcomes.get(label)
            self._record(
                spec,
                run,
                "simulated",
                float(payload.get("wall_s") or 0.0),
                jobs=jobs,
                attempts=outcome.attempts if outcome else 1,
                resources=outcome.resources if outcome else None,
            )
        return result.report

    def _live_event(self, record: dict[str, Any]) -> None:
        """Executor live-telemetry hook: append the record and flush.

        Heartbeat and resource records must hit the log *during* the
        suite -- a concurrently running ``tea-repro monitor`` tails the
        file -- so each one is written and flushed immediately.
        """
        if self.run_log is not None:
            self.run_log.record_event(record)

    # ------------------------------------------------------------------
    # Telemetry.
    # ------------------------------------------------------------------
    def _record(
        self,
        spec: RunSpec,
        run: BenchmarkRun,
        source: str,
        wall_s: float,
        jobs: int = 1,
        attempts: int = 1,
        resources: Mapping[str, float] | None = None,
    ) -> None:
        if self.run_log is None:
            return
        resources = resources or {}
        self.run_log.record(
            RunMetrics(
                workload=spec.workload,
                spec_key=spec.key,
                source=source,
                wall_s=wall_s,
                cycles=run.result.cycles,
                committed=run.result.committed,
                samples={
                    key: sampler.samples_taken
                    for key, sampler in run.samplers.items()
                },
                jobs=jobs,
                attempts=attempts,
                backend=getattr(spec, "backend", "detailed"),
                max_rss_kb=float(resources.get("max_rss_kb", 0.0)),
                cpu_user_s=float(resources.get("cpu_user_s", 0.0)),
                cpu_sys_s=float(resources.get("cpu_sys_s", 0.0)),
            )
        )
