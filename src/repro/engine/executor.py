"""Resilient parallel suite execution over run specs.

:class:`SuiteExecutor` fans a list of ``(label, RunSpec)`` pairs out
across a :class:`~concurrent.futures.ProcessPoolExecutor` (serial
in-process fallback for ``jobs=1``) and survives the three fault
classes long sweep campaigns actually hit:

* **a run raises** -- the worker captures its own traceback and ships
  it back as data, so failure reports show the *remote* stack, and the
  run is retried with deterministic jittered exponential backoff;
* **a worker process dies** (OOM kill, segfault) -- the broken pool is
  torn down and recreated, in-flight runs are re-dispatched, and the
  suite keeps going instead of cascading `BrokenProcessPool` into
  every remaining label;
* **a worker hangs** -- each parallel attempt is bounded by a
  wall-clock ``timeout``; expired workers are killed (the pool is
  recreated) and the run is re-dispatched or reported as timed out.

Completed payloads are handed to an ``on_result`` callback the moment
they land, which is how the engine checkpoints partial suites to the
:class:`~repro.engine.store.RunStore` (interrupted suites resume from
the store instead of restarting). Every execution produces a
:class:`SuiteReport` -- per-label status, attempts, wall time, failure
cause -- and ``keep_going`` mode returns partial results plus that
report instead of raising.

Payloads -- not live objects -- cross the process boundary, so a
parallel suite reconstructs runs through exactly the same
serialisation path as a store hit and stays bit-identical to a serial
run.

With a ``heartbeat`` interval set, every worker additionally ships
periodic progress beats (:mod:`repro.obs.progress`) back over a
``multiprocessing`` queue; the parent folds them into a live
:class:`~repro.engine.monitor.SuiteMonitor` status table, detects
silently *stalled* workers before the wall-clock timeout fires, and
forwards each beat -- plus per-attempt ``resource.getrusage``
accounting -- to an ``on_event`` callback (the engine's run-log hook).
"""

from __future__ import annotations

import hashlib
import heapq
import multiprocessing
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from queue import Empty
from typing import Any

from repro import obs
from repro.engine import monitor as _monitor
from repro.engine.monitor import SuiteMonitor
from repro.engine.runs import run_to_payload, simulate_spec
from repro.engine.spec import RunSpec
from repro.obs import progress as _progress

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

#: Per-label terminal statuses a :class:`SuiteReport` can carry.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


class SuiteExecutionError(RuntimeError):
    """One or more suite runs failed after retries.

    Attributes:
        failures: label -> formatted traceback (or cause) of the final
            attempt. For parallel runs this is the *worker-side*
            traceback, captured where the run actually failed.
        suite_report: The full :class:`SuiteReport` of the execution,
            when available.
    """

    def __init__(
        self,
        failures: dict[str, str],
        suite_report: "SuiteReport | None" = None,
    ) -> None:
        self.failures = dict(failures)
        self.suite_report = suite_report
        summary = ", ".join(
            f"{label} ({_last_line(tb)})"
            for label, tb in sorted(self.failures.items())
        )
        super().__init__(
            f"{len(self.failures)} suite run(s) failed: {summary}"
        )

    def report(self) -> str:
        """Full per-workload failure report (tracebacks included)."""
        sections = [
            f"--- {label} ---\n{tb.rstrip()}"
            for label, tb in sorted(self.failures.items())
        ]
        return "\n".join([str(self)] + sections)


def _last_line(tb: str) -> str:
    lines = [line for line in tb.strip().splitlines() if line.strip()]
    return lines[-1].strip() if lines else "unknown error"


def backoff_delay(
    attempt: int,
    base: float,
    factor: float = 2.0,
    seed: int = 12345,
    label: str = "",
) -> float:
    """Seconds to wait before *attempt* (1-based; the first is free).

    Exponential in the attempt number with a deterministic jitter in
    ``[0.5, 1.5)`` derived from ``sha256(seed, label, attempt)`` --
    the same seed always reproduces the same backoff schedule, so
    retry timing is testable and sweeps are replayable, while distinct
    labels still decorrelate their retry storms.
    """
    if attempt <= 1 or base <= 0:
        return 0.0
    digest = hashlib.sha256(
        f"{seed}:{label}:{attempt}".encode()
    ).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2**64
    return base * factor ** (attempt - 2) * jitter


@dataclass
class LabelOutcome:
    """Terminal status of one suite label."""

    label: str
    status: str  # STATUS_OK | STATUS_FAILED | STATUS_TIMEOUT
    attempts: int
    wall_s: float = 0.0
    cause: str | None = None  # short "Type: message" style cause
    traceback: str | None = None  # formatted (remote) traceback
    #: Final attempt's ``getrusage`` accounting (max_rss_kb,
    #: cpu_user_s, cpu_sys_s), when the platform provides it.
    resources: dict[str, float] | None = None

    def to_json(self) -> dict[str, Any]:
        """A compact JSON-ready record (traceback elided)."""
        doc: dict[str, Any] = {
            "status": self.status,
            "attempts": self.attempts,
            "wall_s": round(self.wall_s, 6),
        }
        if self.cause:
            doc["cause"] = self.cause
        if self.resources:
            doc["max_rss_kb"] = self.resources.get("max_rss_kb", 0.0)
        return doc


@dataclass
class SuiteReport:
    """Structured account of one suite execution.

    Attributes:
        outcomes: label -> terminal :class:`LabelOutcome`.
        retries: Total re-dispatches performed (all labels).
        timeouts: Attempts cancelled for exceeding the timeout.
        pool_recreations: Times the worker pool was torn down and
            rebuilt (worker death or hung-worker cancellation).
        stalls: Silently stalled workers the heartbeat monitor
            flagged (no activity for ``stall_after`` seconds).
        wall_s: Wall-clock seconds the whole execution took.
    """

    outcomes: dict[str, LabelOutcome] = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    pool_recreations: int = 0
    stalls: int = 0
    wall_s: float = 0.0

    @property
    def ok_labels(self) -> list[str]:
        """Labels that completed successfully."""
        return [
            label
            for label, out in self.outcomes.items()
            if out.status == STATUS_OK
        ]

    @property
    def failed_labels(self) -> list[str]:
        """Labels that did not complete (failed or timed out)."""
        return [
            label
            for label, out in self.outcomes.items()
            if out.status != STATUS_OK
        ]

    @property
    def failures(self) -> dict[str, str]:
        """label -> traceback (or cause) for every non-ok label."""
        return {
            label: (
                self.outcomes[label].traceback
                or self.outcomes[label].cause
                or "unknown error"
            )
            for label in self.failed_labels
        }

    def summary(self) -> str:
        """One-paragraph human summary of the execution."""
        lines = [
            f"suite: {len(self.ok_labels)}/{len(self.outcomes)} run(s) "
            f"ok in {self.wall_s:.1f}s -- {self.retries} retrie(s), "
            f"{self.timeouts} timeout(s), {self.stalls} stall(s), "
            f"{self.pool_recreations} pool recreation(s)"
        ]
        for label in sorted(self.failed_labels):
            out = self.outcomes[label]
            lines.append(
                f"  {label}: {out.status} after {out.attempts} "
                f"attempt(s) ({out.cause or 'unknown error'})"
            )
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready record (one telemetry line)."""
        return {
            "labels": len(self.outcomes),
            "ok": len(self.ok_labels),
            "failed": sorted(self.failed_labels),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_recreations": self.pool_recreations,
            "stalls": self.stalls,
            "wall_s": round(self.wall_s, 6),
            "outcomes": {
                label: out.to_json()
                for label, out in sorted(self.outcomes.items())
            },
        }


@dataclass
class SuiteResult:
    """Payloads plus the report of one :meth:`SuiteExecutor.execute`."""

    payloads: dict[str, dict[str, Any]]
    report: SuiteReport


def simulate_to_payload(
    item: tuple[str, RunSpec],
) -> tuple[str, dict[str, Any]]:
    """Worker entry point: simulate one spec, return its payload."""
    label, spec = item
    start = time.perf_counter()
    run = simulate_spec(spec)
    return label, run_to_payload(
        spec, run, wall_s=time.perf_counter() - start
    )


@dataclass
class _WorkerOutcome:
    """What one worker attempt produced (crosses the pickle boundary)."""

    label: str
    payload: dict[str, Any] | None
    error: str | None  # formatted traceback, captured in the worker
    cause: str | None  # "ExcType: message"
    wall_s: float
    obs: list | None = None  # trace events collected during the run
    resources: dict[str, float] | None = None  # getrusage accounting


def _rusage() -> tuple[float, float, float] | None:
    """``(max_rss_kb, cpu_user_s, cpu_sys_s)`` of this process."""
    if _resource is None:
        return None
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    return (
        float(usage.ru_maxrss), usage.ru_utime, usage.ru_stime,
    )


def _rusage_delta(
    before: tuple[float, float, float] | None,
    wall_s: float,
) -> dict[str, float] | None:
    """Per-attempt resource accounting since *before*.

    ``max_rss_kb`` is the process peak (the kernel reports no
    per-interval high-water mark); CPU times are true deltas.
    """
    after = _rusage()
    if before is None or after is None:
        return None
    return {
        "max_rss_kb": after[0],
        "cpu_user_s": round(after[1] - before[1], 6),
        "cpu_sys_s": round(after[2] - before[2], 6),
        "wall_s": round(wall_s, 6),
    }


def _run_captured(
    fn: Callable[[tuple[str, Any]], tuple[str, dict[str, Any]]],
    item: tuple[str, Any],
    attempt: int = 1,
) -> _WorkerOutcome:
    """Run *fn* on *item*, capturing any exception where it happened.

    Runs inside the worker process, so ``error`` carries the remote
    traceback -- not the parent's re-raise site. With observability on,
    trace events recorded during the run (including the ``run:<label>``
    span itself, stamped with the *worker's* pid) are drained from a
    pre-run mark -- so state inherited over ``fork`` is not re-shipped
    -- and travel back on the outcome for the parent to merge into one
    suite-wide timeline.

    The run is bracketed by unconditional ``start``/``done`` progress
    beats (:mod:`repro.obs.progress`) -- when the executor installed a
    heartbeat sink these reach the parent's stall detector even while
    instrumentation is off -- and by a ``getrusage`` snapshot pair
    that lands on the outcome as per-attempt resource accounting.
    """
    label = item[0]
    spec = item[1] if len(item) > 1 else None
    workload = getattr(spec, "workload", "") or label
    backend = getattr(spec, "backend", "") or "detailed"
    start = time.perf_counter()
    usage_before = _rusage()
    instrumented = obs.enabled()
    mark = obs.COLLECTOR.mark() if instrumented else 0
    _progress.set_run_context(label, attempt)
    _progress.begin_run(workload, backend)
    try:
        with obs.span(f"run:{label}"):
            _, payload = fn(item)
    except Exception as exc:
        wall_s = time.perf_counter() - start
        _progress.end_run(workload, backend, 0, 0, ok=False)
        _progress.clear_run_context()
        return _WorkerOutcome(
            label=label,
            payload=None,
            error=traceback.format_exc(),
            cause=f"{type(exc).__name__}: {exc}",
            wall_s=wall_s,
            obs=obs.COLLECTOR.drain_from(mark) if instrumented else None,
            resources=_rusage_delta(usage_before, wall_s),
        )
    wall_s = time.perf_counter() - start
    cycles = committed = 0
    if isinstance(payload, dict):
        cycles = int(payload.get("cycles") or 0)
        committed = int(payload.get("committed") or 0)
    _progress.end_run(workload, backend, cycles, committed, ok=True)
    _progress.clear_run_context()
    return _WorkerOutcome(
        label=label,
        payload=payload,
        error=None,
        cause=None,
        wall_s=wall_s,
        obs=obs.COLLECTOR.drain_from(mark) if instrumented else None,
        resources=_rusage_delta(usage_before, wall_s),
    )


class _QueueSink:
    """Worker-side heartbeat sink: beats -> the parent's queue.

    The ``min_interval_s`` attribute is the throttle
    :mod:`repro.obs.progress` honours, so the executor's heartbeat
    interval governs the beat rate. A full or torn-down queue drops
    the beat -- heartbeats are best-effort by design and must never
    fail a run.
    """

    def __init__(
        self, queue: Any, min_interval_s: float
    ) -> None:
        self.queue = queue
        self.min_interval_s = min_interval_s

    def __call__(self, event: "_progress.ProgressEvent") -> None:
        try:
            self.queue.put_nowait(event.to_record())
        except Exception:
            pass


def _heartbeat_init(queue: Any, interval_s: float) -> None:
    """Pool initializer: install the queue sink in a fresh worker.

    Travels to the worker through ``ProcessPoolExecutor``'s
    ``initargs`` (valid under both fork and spawn -- initargs ride the
    ``Process`` constructor, which is the one place a
    ``multiprocessing.Queue`` may cross).
    """
    _progress.set_sink(_QueueSink(queue, interval_s))


class _LocalSink:
    """Serial-path heartbeat sink: beats -> the parent handler."""

    def __init__(
        self,
        handler: Callable[[dict[str, Any]], None],
        min_interval_s: float,
    ) -> None:
        self._handler = handler
        self.min_interval_s = min_interval_s

    def __call__(self, event: "_progress.ProgressEvent") -> None:
        self._handler(event.to_record())


def _instant(name: str, **args: Any) -> None:
    """Record an executor lifecycle instant (no-op while disabled)."""
    if obs.enabled():
        obs.COLLECTOR.add_instant(name, args or None, cat="executor")


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's worker processes and release its resources.

    Used both when a hung worker must be cancelled (the only way to
    preempt a worker process is to terminate it) and after a
    :class:`BrokenProcessPool` (the pool object is unusable anyway).
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead racing
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken-pool shutdown race
        pass


class SuiteExecutor:
    """Fan specs out over worker processes with fault tolerance.

    Args:
        jobs: Maximum concurrent workers (1 = serial, in-process).
        retries: Re-attempts per failing run (default 1).
        fn: Worker callable ``(label, spec) -> (label, payload)``;
            overridable for tests and fault injection. Must be
            picklable when ``jobs > 1``.
        timeout: Per-attempt wall-clock bound in seconds (parallel
            runs only -- an in-process attempt cannot be preempted).
            ``None`` disables the bound.
        backoff: Base backoff in seconds between attempts of the same
            run (see :func:`backoff_delay`); 0 retries immediately.
        backoff_factor: Exponential growth factor of the backoff.
        seed: Seed of the deterministic backoff jitter.
        keep_going: When true, :meth:`map` returns the partial payload
            dict instead of raising on failures (the report is always
            available via :attr:`last_report`).
        on_result: Callback ``(label, payload)`` invoked in the parent
            as each run lands -- the engine's checkpoint hook.
        heartbeat: Worker heartbeat interval in seconds; ``None``
            (default) disables live monitoring. When set, workers ship
            progress beats to the parent, a
            :class:`~repro.engine.monitor.SuiteMonitor` tracks
            per-label status on :attr:`monitor`, and silent stalls are
            flagged before the wall-clock timeout fires.
        stall_after: Seconds of worker silence before a running label
            counts as stalled (default: 4x the heartbeat interval).
        on_event: Callback for live ``"kind": "heartbeat"`` /
            ``"kind": "resources"`` records as the parent sees them --
            the engine streams these into the run log so ``tea-repro
            monitor`` can tail an in-flight suite.
    """

    def __init__(
        self,
        jobs: int = 1,
        retries: int = 1,
        fn: Callable[
            [tuple[str, RunSpec]], tuple[str, dict[str, Any]]
        ] = simulate_to_payload,
        *,
        timeout: float | None = None,
        backoff: float = 0.0,
        backoff_factor: float = 2.0,
        seed: int = 12345,
        keep_going: bool = False,
        on_result: Callable[[str, dict[str, Any]], None] | None = None,
        heartbeat: float | None = None,
        stall_after: float | None = None,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.retries = max(0, int(retries))
        self.fn = fn
        self.timeout = None if timeout is None else float(timeout)
        self.backoff = max(0.0, float(backoff))
        self.backoff_factor = float(backoff_factor)
        self.seed = int(seed)
        self.keep_going = bool(keep_going)
        self.on_result = on_result
        self.heartbeat = (
            None if heartbeat is None else max(0.05, float(heartbeat))
        )
        if stall_after is None and self.heartbeat is not None:
            stall_after = (
                _monitor.STALL_AFTER_BEATS * self.heartbeat
            )
        self.stall_after = stall_after
        self.on_event = on_event
        self.monitor: SuiteMonitor | None = None
        self.last_report: SuiteReport | None = None

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def map(
        self, items: Sequence[tuple[str, RunSpec]]
    ) -> dict[str, dict[str, Any]]:
        """Execute every item; payloads by label.

        Raises:
            SuiteExecutionError: If any item still fails after retries
                and ``keep_going`` is off (every other item's result is
                completed first). With ``keep_going`` the partial
                payload dict is returned instead.
        """
        result = self.execute(items)
        if result.report.failed_labels and not self.keep_going:
            raise SuiteExecutionError(
                result.report.failures, result.report
            )
        return result.payloads

    def execute(
        self, items: Sequence[tuple[str, RunSpec]]
    ) -> SuiteResult:
        """Execute every item; never raises for run-level failures."""
        items = list(items)
        start = time.monotonic()
        self.monitor = None
        if self.heartbeat is not None:
            self.monitor = SuiteMonitor(
                [item[0] for item in items],
                stall_after=self.stall_after,
            )
        if self.jobs <= 1 or not items or (
            len(items) <= 1 and self.timeout is None
        ):
            result = self._execute_serial(items)
        else:
            result = self._execute_parallel(items)
        result.report.wall_s = time.monotonic() - start
        self.last_report = result.report
        return result

    def _delay(self, attempt: int, label: str) -> float:
        return backoff_delay(
            attempt,
            self.backoff,
            self.backoff_factor,
            self.seed,
            label,
        )

    def _emit(self, label: str, payload: dict[str, Any]) -> None:
        if self.on_result is not None:
            self.on_result(label, payload)

    # ------------------------------------------------------------------
    # Live monitoring plumbing (heartbeat mode only).
    # ------------------------------------------------------------------
    def _live_event(self, record: dict[str, Any]) -> None:
        """Fold one live record into the monitor and forward it."""
        if self.monitor is not None:
            self.monitor.observe(record)
        if self.on_event is not None:
            self.on_event(record)

    def _settle_resources(
        self, label: str, attempt: int, outcome: _WorkerOutcome
    ) -> None:
        """Emit the per-attempt ``"kind": "resources"`` record."""
        if outcome.resources is None:
            return
        self._live_event(
            {
                "kind": "resources",
                "label": label,
                "attempt": attempt,
                "ts": time.time(),
                **outcome.resources,
            }
        )

    def _note(self, method: str, *args: Any) -> None:
        """Invoke a monitor notification if monitoring is on."""
        if self.monitor is not None:
            getattr(self.monitor, method)(*args)

    def _pump(self, queue: Any, report: SuiteReport) -> None:
        """Drain queued worker beats; run the stall check."""
        if self.monitor is None:
            return
        if queue is not None:
            while True:
                try:
                    record = queue.get_nowait()
                except Empty:
                    break
                except (OSError, ValueError):  # queue torn down
                    break
                self._live_event(record)
        for record in self.monitor.check_stalls():
            report.stalls += 1
            obs.COUNTERS.inc("executor.stalls")
            _instant(
                f"stall:{record['label']}",
                stalled_for_s=record.get("stalled_for_s"),
            )
            # The monitor already folded the stall; forward only.
            if self.on_event is not None:
                self.on_event(record)

    # ------------------------------------------------------------------
    # Serial path.
    # ------------------------------------------------------------------
    def _execute_serial(
        self, items: list[tuple[str, RunSpec]]
    ) -> SuiteResult:
        payloads: dict[str, dict[str, Any]] = {}
        report = SuiteReport()
        if self.heartbeat is not None:
            # In-process runs beat straight into the parent handler
            # (no queue). Stall detection needs a thread the serial
            # path deliberately does not have; beats and resource
            # records still flow.
            _progress.set_sink(
                _LocalSink(self._live_event, self.heartbeat)
            )
        try:
            for item in items:
                label = item[0]
                for attempt in range(1, self.retries + 2):
                    _instant(f"dispatch:{label}", attempt=attempt)
                    self._note("note_dispatch", label, attempt)
                    outcome = _run_captured(self.fn, item, attempt)
                    # Serial runs drained their own events out of the
                    # collector; put them back on the shared timeline.
                    obs.COLLECTOR.ingest(outcome.obs)
                    self._settle_resources(label, attempt, outcome)
                    if outcome.error is None:
                        payloads[label] = outcome.payload
                        report.outcomes[label] = LabelOutcome(
                            label, STATUS_OK, attempt, outcome.wall_s,
                            resources=outcome.resources,
                        )
                        obs.COUNTERS.inc("executor.runs_ok")
                        self._note("note_done", label, "done")
                        self._emit(label, outcome.payload)
                        break
                    if attempt <= self.retries:
                        report.retries += 1
                        obs.COUNTERS.inc("executor.retries")
                        _instant(
                            f"retry:{label}",
                            attempt=attempt,
                            cause=outcome.cause,
                        )
                        self._note("note_retry", label, attempt + 1)
                        delay = self._delay(attempt + 1, label)
                        if delay > 0:
                            with obs.span(
                                f"backoff:{label}",
                                delay_s=round(delay, 6),
                            ):
                                time.sleep(delay)
                    else:
                        obs.COUNTERS.inc("executor.runs_failed")
                        self._note("note_done", label, "failed")
                        report.outcomes[label] = LabelOutcome(
                            label,
                            STATUS_FAILED,
                            attempt,
                            outcome.wall_s,
                            cause=outcome.cause,
                            traceback=outcome.error,
                            resources=outcome.resources,
                        )
        finally:
            if self.heartbeat is not None:
                _progress.set_sink(None)
        return SuiteResult(payloads=payloads, report=report)

    # ------------------------------------------------------------------
    # Parallel path.
    # ------------------------------------------------------------------
    def _execute_parallel(
        self, items: list[tuple[str, RunSpec]]
    ) -> SuiteResult:
        workers = min(self.jobs, len(items))
        payloads: dict[str, dict[str, Any]] = {}
        report = SuiteReport()
        ready: deque[tuple[tuple[str, Any], int]] = deque(
            (item, 1) for item in items
        )
        delayed: list[tuple[float, int, tuple[str, Any], int]] = []
        running: dict[Any, tuple[tuple[str, Any], int, float]] = {}
        seq = 0  # heap tie-breaker keeping retry order deterministic

        beat_queue: Any = None
        pool_kwargs: dict[str, Any] = {}
        if self.heartbeat is not None:
            # Workers ship beat records back over this queue; it is
            # passed through the pool initializer (initargs ride the
            # Process constructor, the one place a multiprocessing
            # queue may legally cross, under fork and spawn alike).
            beat_queue = multiprocessing.Queue()
            pool_kwargs = {
                "initializer": _heartbeat_init,
                "initargs": (beat_queue, self.heartbeat),
            }
        pool = ProcessPoolExecutor(max_workers=workers, **pool_kwargs)

        def schedule_retry(
            item: tuple[str, Any], failed_attempt: int
        ) -> None:
            nonlocal seq
            report.retries += 1
            obs.COUNTERS.inc("executor.retries")
            self._note("note_retry", item[0], failed_attempt + 1)
            seq += 1
            delay = self._delay(failed_attempt + 1, item[0])
            heapq.heappush(
                delayed,
                (time.monotonic() + delay, seq, item, failed_attempt + 1),
            )

        try:
            while ready or delayed or running:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, item, attempt = heapq.heappop(delayed)
                    ready.append((item, attempt))

                broken = False
                while ready and len(running) < workers:
                    item, attempt = ready.popleft()
                    try:
                        future = pool.submit(
                            _run_captured, self.fn, item, attempt
                        )
                    except (BrokenProcessPool, RuntimeError):
                        ready.appendleft((item, attempt))
                        broken = True
                        break
                    _instant(f"dispatch:{item[0]}", attempt=attempt)
                    self._note("note_dispatch", item[0], attempt)
                    running[future] = (item, attempt, time.monotonic())

                if not broken:
                    if not running:
                        if delayed:
                            time.sleep(
                                max(
                                    0.0,
                                    delayed[0][0] - time.monotonic(),
                                )
                            )
                        continue
                    broken = self._drain(
                        running, delayed, report, payloads,
                        schedule_retry,
                    )
                    broken = (
                        self._expire(running, report, schedule_retry)
                        or broken
                    )
                self._pump(beat_queue, report)

                if broken:
                    # Surviving in-flight runs are innocent bystanders:
                    # re-dispatch them without consuming an attempt.
                    for item, attempt, _ in running.values():
                        ready.append((item, attempt))
                    running.clear()
                    with obs.span(
                        "pool.recreate", workers=workers
                    ):
                        _terminate_pool(pool)
                        pool = ProcessPoolExecutor(
                            max_workers=workers, **pool_kwargs
                        )
                    report.pool_recreations += 1
                    obs.COUNTERS.inc("executor.pool_recreations")
        finally:
            _terminate_pool(pool)
            self._pump(beat_queue, report)
            if beat_queue is not None:
                beat_queue.close()
                beat_queue.join_thread()
        return SuiteResult(payloads=payloads, report=report)

    def _wait_timeout(
        self,
        running: dict[Any, tuple[tuple[str, Any], int, float]],
        delayed: list,
    ) -> float | None:
        """How long the completion wait may block.

        With heartbeats on, the wait additionally wakes at the beat
        interval so the parent pumps the queue and runs the stall
        check while workers are still in flight.
        """
        bounds = []
        if self.timeout is not None:
            earliest = min(
                started for (_, _, started) in running.values()
            )
            bounds.append(earliest + self.timeout - time.monotonic())
        if delayed:
            bounds.append(delayed[0][0] - time.monotonic())
        if self.heartbeat is not None:
            bounds.append(self.heartbeat)
        if not bounds:
            return None
        return max(0.0, min(bounds))

    def _drain(
        self,
        running: dict[Any, tuple[tuple[str, Any], int, float]],
        delayed: list,
        report: SuiteReport,
        payloads: dict[str, dict[str, Any]],
        schedule_retry: Callable[[tuple[str, Any], int], None],
    ) -> bool:
        """Wait for and settle completed futures; True if pool broke."""
        timeout = self._wait_timeout(running, delayed)
        done, _ = wait(
            set(running), timeout=timeout, return_when=FIRST_COMPLETED
        )
        broken = False
        for future in done:
            item, attempt, started = running.pop(future)
            label = item[0]
            try:
                outcome = future.result()
            except BrokenProcessPool:
                broken = True
                cause = "worker process died (BrokenProcessPool)"
                if attempt <= self.retries:
                    schedule_retry(item, attempt)
                else:
                    self._note("note_done", label, "failed")
                    report.outcomes[label] = LabelOutcome(
                        label,
                        STATUS_FAILED,
                        attempt,
                        time.monotonic() - started,
                        cause=cause,
                        traceback=traceback.format_exc(),
                    )
                continue
            except Exception as exc:  # pickling / pool-internal errors
                cause = f"{type(exc).__name__}: {exc}"
                if attempt <= self.retries:
                    schedule_retry(item, attempt)
                else:
                    self._note("note_done", label, "failed")
                    report.outcomes[label] = LabelOutcome(
                        label,
                        STATUS_FAILED,
                        attempt,
                        time.monotonic() - started,
                        cause=cause,
                        traceback=traceback.format_exc(),
                    )
                continue
            # Worker-side span events travelled back on the outcome;
            # merge them into the parent's timeline.
            obs.COLLECTOR.ingest(outcome.obs)
            self._settle_resources(label, attempt, outcome)
            if outcome.error is None:
                payloads[label] = outcome.payload
                report.outcomes[label] = LabelOutcome(
                    label, STATUS_OK, attempt, outcome.wall_s,
                    resources=outcome.resources,
                )
                obs.COUNTERS.inc("executor.runs_ok")
                self._note("note_done", label, "done")
                self._emit(label, outcome.payload)
            elif attempt <= self.retries:
                _instant(
                    f"retry:{label}",
                    attempt=attempt,
                    cause=outcome.cause,
                )
                schedule_retry(item, attempt)
            else:
                obs.COUNTERS.inc("executor.runs_failed")
                self._note("note_done", label, "failed")
                report.outcomes[label] = LabelOutcome(
                    label,
                    STATUS_FAILED,
                    attempt,
                    outcome.wall_s,
                    cause=outcome.cause,
                    traceback=outcome.error,
                    resources=outcome.resources,
                )
        return broken

    def _expire(
        self,
        running: dict[Any, tuple[tuple[str, Any], int, float]],
        report: SuiteReport,
        schedule_retry: Callable[[tuple[str, Any], int], None],
    ) -> bool:
        """Cancel attempts past the timeout; True if any expired.

        Worker processes cannot be interrupted, so expiry implies
        killing the pool; the caller recreates it and re-dispatches
        the surviving in-flight runs.
        """
        if self.timeout is None:
            return False
        now = time.monotonic()
        expired = [
            future
            for future, (_, _, started) in running.items()
            if now - started >= self.timeout
        ]
        for future in expired:
            item, attempt, started = running.pop(future)
            label = item[0]
            report.timeouts += 1
            obs.COUNTERS.inc("executor.timeouts")
            _instant(
                f"timeout:{label}",
                attempt=attempt,
                limit_s=self.timeout,
            )
            cause = (
                f"timed out after {self.timeout:.1f}s "
                f"(worker cancelled)"
            )
            if attempt <= self.retries:
                schedule_retry(item, attempt)
            else:
                self._note("note_done", label, "timeout")
                report.outcomes[label] = LabelOutcome(
                    label,
                    STATUS_TIMEOUT,
                    attempt,
                    now - started,
                    cause=cause,
                )
        return bool(expired)
