"""Parallel suite execution over run specs.

:class:`SuiteExecutor` fans a list of ``(label, RunSpec)`` pairs out
across a :class:`~concurrent.futures.ProcessPoolExecutor` (serial
in-process fallback for ``jobs=1``), returning one stored-run payload
per label. Workers re-raise nothing mid-suite: each failed run is
retried once (transient failures -- OOM kills, interrupted workers --
are the common case on loaded machines), and only after the whole
suite has been attempted does the executor raise a
:class:`SuiteExecutionError` naming every failing workload with its
traceback.

Payloads -- not live objects -- cross the process boundary, so a
parallel suite reconstructs runs through exactly the same
serialisation path as a store hit and stays bit-identical to a serial
run.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Sequence

from repro.engine.runs import run_to_payload, simulate_spec
from repro.engine.spec import RunSpec


class SuiteExecutionError(RuntimeError):
    """One or more suite runs failed after retries.

    Attributes:
        failures: label -> formatted traceback of the final attempt.
    """

    def __init__(self, failures: dict[str, str]) -> None:
        self.failures = dict(failures)
        summary = ", ".join(
            f"{label} ({_last_line(tb)})"
            for label, tb in sorted(self.failures.items())
        )
        super().__init__(
            f"{len(self.failures)} suite run(s) failed: {summary}"
        )

    def report(self) -> str:
        """Full per-workload failure report (tracebacks included)."""
        sections = [
            f"--- {label} ---\n{tb.rstrip()}"
            for label, tb in sorted(self.failures.items())
        ]
        return "\n".join([str(self)] + sections)


def _last_line(tb: str) -> str:
    lines = [line for line in tb.strip().splitlines() if line.strip()]
    return lines[-1].strip() if lines else "unknown error"


def simulate_to_payload(
    item: tuple[str, RunSpec],
) -> tuple[str, dict[str, Any]]:
    """Worker entry point: simulate one spec, return its payload."""
    label, spec = item
    start = time.perf_counter()
    run = simulate_spec(spec)
    return label, run_to_payload(
        spec, run, wall_s=time.perf_counter() - start
    )


class SuiteExecutor:
    """Fan specs out over worker processes with retry-once semantics.

    Args:
        jobs: Maximum concurrent workers (1 = serial, in-process).
        retries: Re-attempts per failing run (default 1).
        fn: Worker callable ``(label, spec) -> (label, payload)``;
            overridable for tests. Must be picklable when ``jobs > 1``.
    """

    def __init__(
        self,
        jobs: int = 1,
        retries: int = 1,
        fn: Callable[
            [tuple[str, RunSpec]], tuple[str, dict[str, Any]]
        ] = simulate_to_payload,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.retries = max(0, int(retries))
        self.fn = fn

    def map(
        self, items: Sequence[tuple[str, RunSpec]]
    ) -> dict[str, dict[str, Any]]:
        """Execute every item; payloads by label.

        Raises:
            SuiteExecutionError: If any item still fails after retries
                (every other item's result is completed first).
        """
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return self._map_serial(items)
        return self._map_parallel(items)

    def _map_serial(
        self, items: list[tuple[str, RunSpec]]
    ) -> dict[str, dict[str, Any]]:
        results: dict[str, dict[str, Any]] = {}
        failures: dict[str, str] = {}
        for item in items:
            label = item[0]
            for attempt in range(self.retries + 1):
                try:
                    _, payload = self.fn(item)
                    results[label] = payload
                    break
                except Exception:
                    if attempt == self.retries:
                        failures[label] = traceback.format_exc()
        if failures:
            raise SuiteExecutionError(failures)
        return results

    def _map_parallel(
        self, items: list[tuple[str, RunSpec]]
    ) -> dict[str, dict[str, Any]]:
        results: dict[str, dict[str, Any]] = {}
        failures: dict[str, str] = {}
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(self.fn, item): (item, 0) for item in items
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    item, attempt = pending.pop(future)
                    label = item[0]
                    try:
                        _, payload = future.result()
                        results[label] = payload
                    except Exception:
                        if attempt < self.retries:
                            pending[pool.submit(self.fn, item)] = (
                                item,
                                attempt + 1,
                            )
                        else:
                            failures[label] = traceback.format_exc()
        if failures:
            raise SuiteExecutionError(failures)
        return results
