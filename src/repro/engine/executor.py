"""Resilient parallel suite execution over run specs.

:class:`SuiteExecutor` fans a list of ``(label, RunSpec)`` pairs out
across a :class:`~concurrent.futures.ProcessPoolExecutor` (serial
in-process fallback for ``jobs=1``) and survives the three fault
classes long sweep campaigns actually hit:

* **a run raises** -- the worker captures its own traceback and ships
  it back as data, so failure reports show the *remote* stack, and the
  run is retried with deterministic jittered exponential backoff;
* **a worker process dies** (OOM kill, segfault) -- the broken pool is
  torn down and recreated, in-flight runs are re-dispatched, and the
  suite keeps going instead of cascading `BrokenProcessPool` into
  every remaining label;
* **a worker hangs** -- each parallel attempt is bounded by a
  wall-clock ``timeout``; expired workers are killed (the pool is
  recreated) and the run is re-dispatched or reported as timed out.

Completed payloads are handed to an ``on_result`` callback the moment
they land, which is how the engine checkpoints partial suites to the
:class:`~repro.engine.store.RunStore` (interrupted suites resume from
the store instead of restarting). Every execution produces a
:class:`SuiteReport` -- per-label status, attempts, wall time, failure
cause -- and ``keep_going`` mode returns partial results plus that
report instead of raising.

Payloads -- not live objects -- cross the process boundary, so a
parallel suite reconstructs runs through exactly the same
serialisation path as a store hit and stays bit-identical to a serial
run.
"""

from __future__ import annotations

import hashlib
import heapq
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Any

from repro import obs
from repro.engine.runs import run_to_payload, simulate_spec
from repro.engine.spec import RunSpec

#: Per-label terminal statuses a :class:`SuiteReport` can carry.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


class SuiteExecutionError(RuntimeError):
    """One or more suite runs failed after retries.

    Attributes:
        failures: label -> formatted traceback (or cause) of the final
            attempt. For parallel runs this is the *worker-side*
            traceback, captured where the run actually failed.
        suite_report: The full :class:`SuiteReport` of the execution,
            when available.
    """

    def __init__(
        self,
        failures: dict[str, str],
        suite_report: "SuiteReport | None" = None,
    ) -> None:
        self.failures = dict(failures)
        self.suite_report = suite_report
        summary = ", ".join(
            f"{label} ({_last_line(tb)})"
            for label, tb in sorted(self.failures.items())
        )
        super().__init__(
            f"{len(self.failures)} suite run(s) failed: {summary}"
        )

    def report(self) -> str:
        """Full per-workload failure report (tracebacks included)."""
        sections = [
            f"--- {label} ---\n{tb.rstrip()}"
            for label, tb in sorted(self.failures.items())
        ]
        return "\n".join([str(self)] + sections)


def _last_line(tb: str) -> str:
    lines = [line for line in tb.strip().splitlines() if line.strip()]
    return lines[-1].strip() if lines else "unknown error"


def backoff_delay(
    attempt: int,
    base: float,
    factor: float = 2.0,
    seed: int = 12345,
    label: str = "",
) -> float:
    """Seconds to wait before *attempt* (1-based; the first is free).

    Exponential in the attempt number with a deterministic jitter in
    ``[0.5, 1.5)`` derived from ``sha256(seed, label, attempt)`` --
    the same seed always reproduces the same backoff schedule, so
    retry timing is testable and sweeps are replayable, while distinct
    labels still decorrelate their retry storms.
    """
    if attempt <= 1 or base <= 0:
        return 0.0
    digest = hashlib.sha256(
        f"{seed}:{label}:{attempt}".encode()
    ).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2**64
    return base * factor ** (attempt - 2) * jitter


@dataclass
class LabelOutcome:
    """Terminal status of one suite label."""

    label: str
    status: str  # STATUS_OK | STATUS_FAILED | STATUS_TIMEOUT
    attempts: int
    wall_s: float = 0.0
    cause: str | None = None  # short "Type: message" style cause
    traceback: str | None = None  # formatted (remote) traceback

    def to_json(self) -> dict[str, Any]:
        """A compact JSON-ready record (traceback elided)."""
        doc: dict[str, Any] = {
            "status": self.status,
            "attempts": self.attempts,
            "wall_s": round(self.wall_s, 6),
        }
        if self.cause:
            doc["cause"] = self.cause
        return doc


@dataclass
class SuiteReport:
    """Structured account of one suite execution.

    Attributes:
        outcomes: label -> terminal :class:`LabelOutcome`.
        retries: Total re-dispatches performed (all labels).
        timeouts: Attempts cancelled for exceeding the timeout.
        pool_recreations: Times the worker pool was torn down and
            rebuilt (worker death or hung-worker cancellation).
        wall_s: Wall-clock seconds the whole execution took.
    """

    outcomes: dict[str, LabelOutcome] = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    pool_recreations: int = 0
    wall_s: float = 0.0

    @property
    def ok_labels(self) -> list[str]:
        """Labels that completed successfully."""
        return [
            label
            for label, out in self.outcomes.items()
            if out.status == STATUS_OK
        ]

    @property
    def failed_labels(self) -> list[str]:
        """Labels that did not complete (failed or timed out)."""
        return [
            label
            for label, out in self.outcomes.items()
            if out.status != STATUS_OK
        ]

    @property
    def failures(self) -> dict[str, str]:
        """label -> traceback (or cause) for every non-ok label."""
        return {
            label: (
                self.outcomes[label].traceback
                or self.outcomes[label].cause
                or "unknown error"
            )
            for label in self.failed_labels
        }

    def summary(self) -> str:
        """One-paragraph human summary of the execution."""
        lines = [
            f"suite: {len(self.ok_labels)}/{len(self.outcomes)} run(s) "
            f"ok in {self.wall_s:.1f}s -- {self.retries} retrie(s), "
            f"{self.timeouts} timeout(s), "
            f"{self.pool_recreations} pool recreation(s)"
        ]
        for label in sorted(self.failed_labels):
            out = self.outcomes[label]
            lines.append(
                f"  {label}: {out.status} after {out.attempts} "
                f"attempt(s) ({out.cause or 'unknown error'})"
            )
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready record (one telemetry line)."""
        return {
            "labels": len(self.outcomes),
            "ok": len(self.ok_labels),
            "failed": sorted(self.failed_labels),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_recreations": self.pool_recreations,
            "wall_s": round(self.wall_s, 6),
            "outcomes": {
                label: out.to_json()
                for label, out in sorted(self.outcomes.items())
            },
        }


@dataclass
class SuiteResult:
    """Payloads plus the report of one :meth:`SuiteExecutor.execute`."""

    payloads: dict[str, dict[str, Any]]
    report: SuiteReport


def simulate_to_payload(
    item: tuple[str, RunSpec],
) -> tuple[str, dict[str, Any]]:
    """Worker entry point: simulate one spec, return its payload."""
    label, spec = item
    start = time.perf_counter()
    run = simulate_spec(spec)
    return label, run_to_payload(
        spec, run, wall_s=time.perf_counter() - start
    )


@dataclass
class _WorkerOutcome:
    """What one worker attempt produced (crosses the pickle boundary)."""

    label: str
    payload: dict[str, Any] | None
    error: str | None  # formatted traceback, captured in the worker
    cause: str | None  # "ExcType: message"
    wall_s: float
    obs: list | None = None  # trace events collected during the run


def _run_captured(
    fn: Callable[[tuple[str, Any]], tuple[str, dict[str, Any]]],
    item: tuple[str, Any],
) -> _WorkerOutcome:
    """Run *fn* on *item*, capturing any exception where it happened.

    Runs inside the worker process, so ``error`` carries the remote
    traceback -- not the parent's re-raise site. With observability on,
    trace events recorded during the run (including the ``run:<label>``
    span itself, stamped with the *worker's* pid) are drained from a
    pre-run mark -- so state inherited over ``fork`` is not re-shipped
    -- and travel back on the outcome for the parent to merge into one
    suite-wide timeline.
    """
    label = item[0]
    start = time.perf_counter()
    instrumented = obs.enabled()
    mark = obs.COLLECTOR.mark() if instrumented else 0
    try:
        with obs.span(f"run:{label}"):
            _, payload = fn(item)
    except Exception as exc:
        return _WorkerOutcome(
            label=label,
            payload=None,
            error=traceback.format_exc(),
            cause=f"{type(exc).__name__}: {exc}",
            wall_s=time.perf_counter() - start,
            obs=obs.COLLECTOR.drain_from(mark) if instrumented else None,
        )
    return _WorkerOutcome(
        label=label,
        payload=payload,
        error=None,
        cause=None,
        wall_s=time.perf_counter() - start,
        obs=obs.COLLECTOR.drain_from(mark) if instrumented else None,
    )


def _instant(name: str, **args: Any) -> None:
    """Record an executor lifecycle instant (no-op while disabled)."""
    if obs.enabled():
        obs.COLLECTOR.add_instant(name, args or None, cat="executor")


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's worker processes and release its resources.

    Used both when a hung worker must be cancelled (the only way to
    preempt a worker process is to terminate it) and after a
    :class:`BrokenProcessPool` (the pool object is unusable anyway).
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead racing
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken-pool shutdown race
        pass


class SuiteExecutor:
    """Fan specs out over worker processes with fault tolerance.

    Args:
        jobs: Maximum concurrent workers (1 = serial, in-process).
        retries: Re-attempts per failing run (default 1).
        fn: Worker callable ``(label, spec) -> (label, payload)``;
            overridable for tests and fault injection. Must be
            picklable when ``jobs > 1``.
        timeout: Per-attempt wall-clock bound in seconds (parallel
            runs only -- an in-process attempt cannot be preempted).
            ``None`` disables the bound.
        backoff: Base backoff in seconds between attempts of the same
            run (see :func:`backoff_delay`); 0 retries immediately.
        backoff_factor: Exponential growth factor of the backoff.
        seed: Seed of the deterministic backoff jitter.
        keep_going: When true, :meth:`map` returns the partial payload
            dict instead of raising on failures (the report is always
            available via :attr:`last_report`).
        on_result: Callback ``(label, payload)`` invoked in the parent
            as each run lands -- the engine's checkpoint hook.
    """

    def __init__(
        self,
        jobs: int = 1,
        retries: int = 1,
        fn: Callable[
            [tuple[str, RunSpec]], tuple[str, dict[str, Any]]
        ] = simulate_to_payload,
        *,
        timeout: float | None = None,
        backoff: float = 0.0,
        backoff_factor: float = 2.0,
        seed: int = 12345,
        keep_going: bool = False,
        on_result: Callable[[str, dict[str, Any]], None] | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.retries = max(0, int(retries))
        self.fn = fn
        self.timeout = None if timeout is None else float(timeout)
        self.backoff = max(0.0, float(backoff))
        self.backoff_factor = float(backoff_factor)
        self.seed = int(seed)
        self.keep_going = bool(keep_going)
        self.on_result = on_result
        self.last_report: SuiteReport | None = None

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def map(
        self, items: Sequence[tuple[str, RunSpec]]
    ) -> dict[str, dict[str, Any]]:
        """Execute every item; payloads by label.

        Raises:
            SuiteExecutionError: If any item still fails after retries
                and ``keep_going`` is off (every other item's result is
                completed first). With ``keep_going`` the partial
                payload dict is returned instead.
        """
        result = self.execute(items)
        if result.report.failed_labels and not self.keep_going:
            raise SuiteExecutionError(
                result.report.failures, result.report
            )
        return result.payloads

    def execute(
        self, items: Sequence[tuple[str, RunSpec]]
    ) -> SuiteResult:
        """Execute every item; never raises for run-level failures."""
        items = list(items)
        start = time.monotonic()
        if self.jobs <= 1 or not items or (
            len(items) <= 1 and self.timeout is None
        ):
            result = self._execute_serial(items)
        else:
            result = self._execute_parallel(items)
        result.report.wall_s = time.monotonic() - start
        self.last_report = result.report
        return result

    def _delay(self, attempt: int, label: str) -> float:
        return backoff_delay(
            attempt,
            self.backoff,
            self.backoff_factor,
            self.seed,
            label,
        )

    def _emit(self, label: str, payload: dict[str, Any]) -> None:
        if self.on_result is not None:
            self.on_result(label, payload)

    # ------------------------------------------------------------------
    # Serial path.
    # ------------------------------------------------------------------
    def _execute_serial(
        self, items: list[tuple[str, RunSpec]]
    ) -> SuiteResult:
        payloads: dict[str, dict[str, Any]] = {}
        report = SuiteReport()
        for item in items:
            label = item[0]
            for attempt in range(1, self.retries + 2):
                _instant(f"dispatch:{label}", attempt=attempt)
                outcome = _run_captured(self.fn, item)
                # Serial runs drained their own events out of the
                # collector; put them back on the shared timeline.
                obs.COLLECTOR.ingest(outcome.obs)
                if outcome.error is None:
                    payloads[label] = outcome.payload
                    report.outcomes[label] = LabelOutcome(
                        label, STATUS_OK, attempt, outcome.wall_s
                    )
                    obs.COUNTERS.inc("executor.runs_ok")
                    self._emit(label, outcome.payload)
                    break
                if attempt <= self.retries:
                    report.retries += 1
                    obs.COUNTERS.inc("executor.retries")
                    _instant(
                        f"retry:{label}",
                        attempt=attempt,
                        cause=outcome.cause,
                    )
                    delay = self._delay(attempt + 1, label)
                    if delay > 0:
                        with obs.span(
                            f"backoff:{label}", delay_s=round(delay, 6)
                        ):
                            time.sleep(delay)
                else:
                    obs.COUNTERS.inc("executor.runs_failed")
                    report.outcomes[label] = LabelOutcome(
                        label,
                        STATUS_FAILED,
                        attempt,
                        outcome.wall_s,
                        cause=outcome.cause,
                        traceback=outcome.error,
                    )
        return SuiteResult(payloads=payloads, report=report)

    # ------------------------------------------------------------------
    # Parallel path.
    # ------------------------------------------------------------------
    def _execute_parallel(
        self, items: list[tuple[str, RunSpec]]
    ) -> SuiteResult:
        workers = min(self.jobs, len(items))
        payloads: dict[str, dict[str, Any]] = {}
        report = SuiteReport()
        ready: deque[tuple[tuple[str, Any], int]] = deque(
            (item, 1) for item in items
        )
        delayed: list[tuple[float, int, tuple[str, Any], int]] = []
        running: dict[Any, tuple[tuple[str, Any], int, float]] = {}
        seq = 0  # heap tie-breaker keeping retry order deterministic
        pool = ProcessPoolExecutor(max_workers=workers)

        def schedule_retry(
            item: tuple[str, Any], failed_attempt: int
        ) -> None:
            nonlocal seq
            report.retries += 1
            obs.COUNTERS.inc("executor.retries")
            seq += 1
            delay = self._delay(failed_attempt + 1, item[0])
            heapq.heappush(
                delayed,
                (time.monotonic() + delay, seq, item, failed_attempt + 1),
            )

        try:
            while ready or delayed or running:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, item, attempt = heapq.heappop(delayed)
                    ready.append((item, attempt))

                broken = False
                while ready and len(running) < workers:
                    item, attempt = ready.popleft()
                    try:
                        future = pool.submit(
                            _run_captured, self.fn, item
                        )
                    except (BrokenProcessPool, RuntimeError):
                        ready.appendleft((item, attempt))
                        broken = True
                        break
                    _instant(f"dispatch:{item[0]}", attempt=attempt)
                    running[future] = (item, attempt, time.monotonic())

                if not broken:
                    if not running:
                        if delayed:
                            time.sleep(
                                max(
                                    0.0,
                                    delayed[0][0] - time.monotonic(),
                                )
                            )
                        continue
                    broken = self._drain(
                        running, delayed, report, payloads,
                        schedule_retry,
                    )
                    broken = (
                        self._expire(running, report, schedule_retry)
                        or broken
                    )

                if broken:
                    # Surviving in-flight runs are innocent bystanders:
                    # re-dispatch them without consuming an attempt.
                    for item, attempt, _ in running.values():
                        ready.append((item, attempt))
                    running.clear()
                    with obs.span(
                        "pool.recreate", workers=workers
                    ):
                        _terminate_pool(pool)
                        pool = ProcessPoolExecutor(max_workers=workers)
                    report.pool_recreations += 1
                    obs.COUNTERS.inc("executor.pool_recreations")
        finally:
            _terminate_pool(pool)
        return SuiteResult(payloads=payloads, report=report)

    def _wait_timeout(
        self,
        running: dict[Any, tuple[tuple[str, Any], int, float]],
        delayed: list,
    ) -> float | None:
        """How long the completion wait may block."""
        bounds = []
        if self.timeout is not None:
            earliest = min(
                started for (_, _, started) in running.values()
            )
            bounds.append(earliest + self.timeout - time.monotonic())
        if delayed:
            bounds.append(delayed[0][0] - time.monotonic())
        if not bounds:
            return None
        return max(0.0, min(bounds))

    def _drain(
        self,
        running: dict[Any, tuple[tuple[str, Any], int, float]],
        delayed: list,
        report: SuiteReport,
        payloads: dict[str, dict[str, Any]],
        schedule_retry: Callable[[tuple[str, Any], int], None],
    ) -> bool:
        """Wait for and settle completed futures; True if pool broke."""
        timeout = self._wait_timeout(running, delayed)
        done, _ = wait(
            set(running), timeout=timeout, return_when=FIRST_COMPLETED
        )
        broken = False
        for future in done:
            item, attempt, started = running.pop(future)
            label = item[0]
            try:
                outcome = future.result()
            except BrokenProcessPool:
                broken = True
                cause = "worker process died (BrokenProcessPool)"
                if attempt <= self.retries:
                    schedule_retry(item, attempt)
                else:
                    report.outcomes[label] = LabelOutcome(
                        label,
                        STATUS_FAILED,
                        attempt,
                        time.monotonic() - started,
                        cause=cause,
                        traceback=traceback.format_exc(),
                    )
                continue
            except Exception as exc:  # pickling / pool-internal errors
                cause = f"{type(exc).__name__}: {exc}"
                if attempt <= self.retries:
                    schedule_retry(item, attempt)
                else:
                    report.outcomes[label] = LabelOutcome(
                        label,
                        STATUS_FAILED,
                        attempt,
                        time.monotonic() - started,
                        cause=cause,
                        traceback=traceback.format_exc(),
                    )
                continue
            # Worker-side span events travelled back on the outcome;
            # merge them into the parent's timeline.
            obs.COLLECTOR.ingest(outcome.obs)
            if outcome.error is None:
                payloads[label] = outcome.payload
                report.outcomes[label] = LabelOutcome(
                    label, STATUS_OK, attempt, outcome.wall_s
                )
                obs.COUNTERS.inc("executor.runs_ok")
                self._emit(label, outcome.payload)
            elif attempt <= self.retries:
                _instant(
                    f"retry:{label}",
                    attempt=attempt,
                    cause=outcome.cause,
                )
                schedule_retry(item, attempt)
            else:
                obs.COUNTERS.inc("executor.runs_failed")
                report.outcomes[label] = LabelOutcome(
                    label,
                    STATUS_FAILED,
                    attempt,
                    outcome.wall_s,
                    cause=outcome.cause,
                    traceback=outcome.error,
                )
        return broken

    def _expire(
        self,
        running: dict[Any, tuple[tuple[str, Any], int, float]],
        report: SuiteReport,
        schedule_retry: Callable[[tuple[str, Any], int], None],
    ) -> bool:
        """Cancel attempts past the timeout; True if any expired.

        Worker processes cannot be interrupted, so expiry implies
        killing the pool; the caller recreates it and re-dispatches
        the surviving in-flight runs.
        """
        if self.timeout is None:
            return False
        now = time.monotonic()
        expired = [
            future
            for future, (_, _, started) in running.items()
            if now - started >= self.timeout
        ]
        for future in expired:
            item, attempt, started = running.pop(future)
            label = item[0]
            report.timeouts += 1
            obs.COUNTERS.inc("executor.timeouts")
            _instant(
                f"timeout:{label}",
                attempt=attempt,
                limit_s=self.timeout,
            )
            cause = (
                f"timed out after {self.timeout:.1f}s "
                f"(worker cancelled)"
            )
            if attempt <= self.retries:
                schedule_retry(item, attempt)
            else:
                report.outcomes[label] = LabelOutcome(
                    label,
                    STATUS_TIMEOUT,
                    attempt,
                    now - started,
                    cause=cause,
                )
        return bool(expired)
