"""A/B throughput benchmark: the optimised hot loop vs the reference.

The core keeps two commit loops: the optimised production path and the
frozen pre-optimisation reference (``Core(reference_loop=True)``).  The
optimisation contract is *bit-identity*: for a fixed seed the two loops
must produce exactly the same cycle count, golden attribution,
commit-state histogram, and per-sampler raw profiles -- the optimised
loop is only allowed to be faster, never different.

This module measures both loops on real workloads, enforces that
contract, and reports throughput (simulated cycles per wall second) so
CI can gate on regressions:

* :func:`run_workload` -- one workload: best-of-N timed optimised runs,
  one timed reference run, profile-equality check, speedup.
* :func:`run_suite` -- a list of workloads plus the geometric-mean
  speedup.
* :func:`BenchReport.to_bench_entries` -- the mapping
  :func:`repro.engine.telemetry.write_bench_file` persists for the CI
  regression gate (``tea-repro bench``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

from repro.core.samplers import make_sampler
from repro.engine.spec import DEFAULT_PERIOD, TECHNIQUES
from repro.uarch.core import Core
from repro.workloads import build

#: Default workloads for the CI smoke benchmark: small enough to run in
#: a couple of minutes at the smoke scale, diverse enough to exercise
#: the compute-, memory-, and branch-bound corners of the hot loop.
SMOKE_WORKLOADS = ("lbm", "mcf", "x264")

#: Workload scale for the smoke benchmark.
SMOKE_SCALE = 0.2

#: The non-default execution tiers a tier benchmark measures.
TIER_BACKENDS = ("functional", "sampled")


class ProfileMismatchError(AssertionError):
    """The optimised and reference loops disagreed on a profile."""


@dataclass
class WorkloadBench:
    """A/B measurement of one workload.

    Attributes:
        name: Workload name.
        cycles: Simulated cycles per run (identical across A and B).
        cycles_per_sec: Optimised-loop throughput (best of ``repeat``).
        reference_cycles_per_sec: Reference-loop throughput (best of
            ``repeat``); None when the reference side was skipped.
        speedup: ``cycles_per_sec / reference_cycles_per_sec`` (None
            when the reference side was skipped).
        identical: True when every profile matched between the two
            loops; None when the reference side was skipped.
        backend: Execution tier measured (``"detailed"`` unless this
            row came from a tier benchmark).
        detailed_cycles_per_sec: The same workload's detailed-tier
            throughput, for tier rows.
        speedup_vs_detailed: End-to-end throughput ratio of this tier
            over the detailed tier (tier rows only).
    """

    name: str
    cycles: int
    cycles_per_sec: float
    reference_cycles_per_sec: float | None = None
    speedup: float | None = None
    identical: bool | None = None
    backend: str = "detailed"
    detailed_cycles_per_sec: float | None = None
    speedup_vs_detailed: float | None = None


@dataclass
class BenchReport:
    """A/B measurements for a workload suite."""

    workloads: list[WorkloadBench]

    @property
    def geomean_speedup(self) -> float | None:
        """Geometric-mean speedup (None without reference runs)."""
        speedups = [
            w.speedup for w in self.workloads if w.speedup is not None
        ]
        if not speedups:
            return None
        return math.exp(sum(math.log(s) for s in speedups) / len(speedups))

    def geomean_tier_speedup(self, backend: str) -> float | None:
        """Geometric-mean end-to-end speedup of a tier over detailed."""
        # Filter on `is not None`, matching geomean_speedup: truthiness
        # would also drop a measured 0.0 ratio, silently flattering the
        # geomean instead of surfacing the degenerate measurement.
        speedups = [
            w.speedup_vs_detailed
            for w in self.workloads
            if w.backend == backend and w.speedup_vs_detailed is not None
        ]
        if not speedups:
            return None
        return math.exp(sum(math.log(s) for s in speedups) / len(speedups))

    def to_bench_entries(self) -> dict[str, dict[str, float]]:
        """Per-workload entries for a BENCH file.

        Tier rows key as ``"<workload>@<backend>"`` (the row's
        :attr:`WorkloadBench.name` already carries the suffix), so
        they sit beside the plain detailed entries without colliding
        with the regression gate's name overlap.
        """
        entries: dict[str, dict[str, float]] = {}
        for w in self.workloads:
            entry: dict[str, float] = {
                "cycles": float(w.cycles),
                "cycles_per_sec": round(w.cycles_per_sec, 1),
            }
            if w.reference_cycles_per_sec is not None:
                entry["reference_cycles_per_sec"] = round(
                    w.reference_cycles_per_sec, 1
                )
            if w.speedup is not None:
                entry["speedup"] = round(w.speedup, 3)
            if w.detailed_cycles_per_sec is not None:
                entry["detailed_cycles_per_sec"] = round(
                    w.detailed_cycles_per_sec, 1
                )
            if w.speedup_vs_detailed is not None:
                entry["speedup_vs_detailed"] = round(
                    w.speedup_vs_detailed, 3
                )
            entries[w.name] = entry
        return entries


def _timed_run(
    workload,
    techniques: Sequence[str],
    period: int,
    seed: int,
    reference_loop: bool,
) -> tuple[float, int, dict[str, Any]]:
    """One fresh simulation; (wall seconds, cycles, profile snapshot)."""
    samplers = [
        make_sampler(t, period, seed=seed + i)
        for i, t in enumerate(techniques)
    ]
    core = Core(
        workload.program,
        samplers=samplers,
        arch_state=workload.fresh_state(),
        reference_loop=reference_loop,
    )
    start = time.perf_counter()
    result = core.run()
    wall = time.perf_counter() - start
    profiles: dict[str, Any] = {
        "cycles": result.cycles,
        "golden": dict(result.golden_raw),
        "state_cycles": dict(core.state_cycles),
        "samplers": [
            {
                "raw": dict(s.raw),
                "taken": s.samples_taken,
                "dropped": s.samples_dropped,
            }
            for s in samplers
        ],
    }
    return wall, result.cycles, profiles


def run_workload(
    name: str,
    scale: float = SMOKE_SCALE,
    repeat: int = 3,
    ab: bool = True,
    techniques: Sequence[str] = TECHNIQUES,
    period: int = DEFAULT_PERIOD,
    seed: int = 12345,
) -> WorkloadBench:
    """Benchmark one workload, A/B-checked against the reference loop.

    Args:
        name: Workload name (see :mod:`repro.workloads`).
        scale: Workload scale factor.
        repeat: Timed runs per side; the best (highest cycles/s) counts,
            which is the standard guard against scheduler noise.
        ab: Also run the frozen reference loop and require bit-identical
            profiles. Disable only for quick local timing.
        techniques: Sampler techniques to attach.
        period: Sampling period.
        seed: Base sampler seed (technique *i* uses ``seed + i``).

    Raises:
        ProfileMismatchError: When any optimised-loop profile (cycles,
            golden attribution, state histogram, or a sampler's raw
            profile) differs from the reference loop's.
    """
    workload = build(name, scale=scale)
    best_wall = math.inf
    profiles: dict[str, Any] | None = None
    cycles = 0
    for _ in range(max(1, repeat)):
        wall, cycles, run_profiles = _timed_run(
            workload, techniques, period, seed, reference_loop=False
        )
        if wall < best_wall:
            best_wall = wall
        if profiles is None:
            profiles = run_profiles
        elif run_profiles != profiles:
            raise ProfileMismatchError(
                f"{name}: optimised loop is not deterministic across "
                f"repeats"
            )
    bench = WorkloadBench(
        name=name,
        cycles=cycles,
        cycles_per_sec=cycles / best_wall if best_wall > 0 else 0.0,
    )
    if not ab:
        return bench

    best_ref_wall = math.inf
    ref_profiles: dict[str, Any] | None = None
    for _ in range(max(1, repeat)):
        wall, _, run_profiles = _timed_run(
            workload, techniques, period, seed, reference_loop=True
        )
        if wall < best_ref_wall:
            best_ref_wall = wall
        if ref_profiles is None:
            ref_profiles = run_profiles
    bench.identical = profiles == ref_profiles
    if not bench.identical:
        assert profiles is not None and ref_profiles is not None
        detail = [
            key
            for key in ("cycles", "golden", "state_cycles", "samplers")
            if profiles[key] != ref_profiles[key]
        ]
        raise ProfileMismatchError(
            f"{name}: optimised loop diverges from the reference loop "
            f"in {', '.join(detail)}"
        )
    bench.reference_cycles_per_sec = (
        cycles / best_ref_wall if best_ref_wall > 0 else 0.0
    )
    if bench.reference_cycles_per_sec > 0:
        bench.speedup = bench.cycles_per_sec / bench.reference_cycles_per_sec
    return bench


def _timed_tier_run(
    workload,
    backend: str,
    techniques: Sequence[str],
    period: int,
    seed: int,
    plan,
) -> tuple[float, int]:
    """One fresh tier simulation; (wall seconds, reported cycles).

    The sampled tier reports *extrapolated* cycles and the functional
    tier reports committed instructions (IPC 1 by construction), so
    ``cycles / wall`` stays an end-to-end "simulated cycles per wall
    second" figure on every tier.
    """
    from repro.backends import simulate_backend

    samplers = (
        []
        if backend == "functional"
        else [
            make_sampler(t, period, seed=seed + i)
            for i, t in enumerate(techniques)
        ]
    )
    state = workload.fresh_state()
    start = time.perf_counter()
    result = simulate_backend(
        backend,
        workload.program,
        samplers=samplers,
        arch_state=state,
        plan=plan,
    )
    wall = time.perf_counter() - start
    return wall, result.cycles


def run_tier_suite(
    workloads: Sequence[str] = SMOKE_WORKLOADS,
    scale: float = SMOKE_SCALE,
    repeat: int = 3,
    backends: Sequence[str] = TIER_BACKENDS,
    ab: bool = False,
    techniques: Sequence[str] = TECHNIQUES,
    period: int = DEFAULT_PERIOD,
    seed: int = 12345,
    plan=None,
) -> BenchReport:
    """Benchmark each workload on the detailed tier plus *backends*.

    Every workload gets one detailed row (named plainly, A/B-checked
    when *ab* is set) and one ``"<name>@<backend>"`` row per requested
    tier carrying its end-to-end throughput and speedup over detailed.

    Args:
        plan: Sampled-tier :class:`~repro.backends.sampled.WindowPlan`
            (``None`` = the plan defaults).
    """
    rows: list[WorkloadBench] = []
    for name in workloads:
        detailed = run_workload(
            name,
            scale=scale,
            repeat=repeat,
            ab=ab,
            techniques=techniques,
            period=period,
            seed=seed,
        )
        rows.append(detailed)
        workload = build(name, scale=scale)
        for backend in backends:
            best_wall = math.inf
            cycles = 0
            for _ in range(max(1, repeat)):
                wall, cycles = _timed_tier_run(
                    workload, backend, techniques, period, seed, plan
                )
                if wall < best_wall:
                    best_wall = wall
            cps = cycles / best_wall if best_wall > 0 else 0.0
            rows.append(
                WorkloadBench(
                    name=f"{name}@{backend}",
                    cycles=cycles,
                    cycles_per_sec=cps,
                    backend=backend,
                    detailed_cycles_per_sec=detailed.cycles_per_sec,
                    speedup_vs_detailed=(
                        cps / detailed.cycles_per_sec
                        if detailed.cycles_per_sec > 0
                        else None
                    ),
                )
            )
    return BenchReport(workloads=rows)


def run_suite(
    workloads: Sequence[str] = SMOKE_WORKLOADS,
    scale: float = SMOKE_SCALE,
    repeat: int = 3,
    ab: bool = True,
    techniques: Sequence[str] = TECHNIQUES,
    period: int = DEFAULT_PERIOD,
    seed: int = 12345,
) -> BenchReport:
    """Benchmark a list of workloads (see :func:`run_workload`)."""
    return BenchReport(
        workloads=[
            run_workload(
                name,
                scale=scale,
                repeat=repeat,
                ab=ab,
                techniques=techniques,
                period=period,
                seed=seed,
            )
            for name in workloads
        ]
    )


def format_report(report: BenchReport) -> str:
    """Render a human-readable A/B throughput table."""
    lines = [
        f"{'workload':<18s} {'cycles':>10s} {'opt c/s':>12s} "
        f"{'ref c/s':>12s} {'speedup':>8s}  A/B"
    ]
    for w in report.workloads:
        ref = (
            f"{w.reference_cycles_per_sec:>12,.0f}"
            if w.reference_cycles_per_sec is not None
            else f"{'-':>12s}"
        )
        shown = (
            w.speedup if w.speedup is not None else w.speedup_vs_detailed
        )
        speedup = (
            f"{shown:>7.2f}x" if shown is not None else f"{'-':>8s}"
        )
        check = {True: "identical", False: "MISMATCH", None: "-"}[w.identical]
        lines.append(
            f"{w.name:<18s} {w.cycles:>10,d} {w.cycles_per_sec:>12,.0f} "
            f"{ref} {speedup}  {check}"
        )
    geomean = report.geomean_speedup
    if geomean is not None:
        lines.append(f"geomean speedup: {geomean:.2f}x")
    for backend in TIER_BACKENDS:
        tier_geomean = report.geomean_tier_speedup(backend)
        if tier_geomean is not None:
            lines.append(
                f"geomean {backend} speedup vs detailed: "
                f"{tier_geomean:.2f}x"
            )
    return "\n".join(lines)
