"""Run telemetry: structured per-run metrics and the JSONL run log.

Every engine run -- simulated, loaded from the store, or served from
the in-process memo -- produces one :class:`RunMetrics` record. With a
:class:`RunLog` attached the engine appends each record as one JSON
line, giving a durable, greppable account of what actually simulated
versus what was a cache hit (``tea-repro stats`` summarises it, and the
acceptance check "a warm store performs zero new simulations" reads
exactly these counters).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Mapping
from typing import Any

#: Default run-log filename (under the store root).
DEFAULT_RUN_LOG_NAME = "runs.jsonl"

#: Metric sources, in increasing cheapness.
SOURCES = ("simulated", "store", "memo")

#: Schema tag carried by ``tea-repro stats --json`` documents.
STATS_SCHEMA = "tea-stats-v1"


def validate_stats_doc(doc: Any) -> dict[str, Any]:
    """Validate a stats summary document's schema tag.

    Readers of ``tea-repro stats --json`` output call this first;
    BENCH files carry ``tea-bench-v1`` the same way.

    Raises:
        ValueError: When *doc* is not a dict or carries the wrong
            (or no) schema tag.
    """
    if not isinstance(doc, dict) or doc.get("schema") != STATS_SCHEMA:
        found = doc.get("schema") if isinstance(doc, dict) else None
        raise ValueError(
            f"not a {STATS_SCHEMA} stats document (schema={found!r})"
        )
    return doc


@dataclass
class RunMetrics:
    """Telemetry for one engine run.

    Attributes:
        workload: Workload name.
        spec_key: Canonical spec content hash.
        source: ``"simulated"`` (a new simulation ran), ``"store"``
            (cross-process store hit), or ``"memo"`` (in-process hit).
        wall_s: Wall-clock seconds this run cost the caller.
        cycles: Simulated core cycles of the run.
        committed: Committed instructions of the run.
        samples: Samples taken per attached sampler key.
        jobs: Worker count the run executed under (1 = in-process).
        attempts: Execution attempts the run took (>1 = it was
            retried after transient failures before succeeding).
        backend: Execution tier the run used (``"detailed"``,
            ``"functional"``, or ``"sampled"``).
        timestamp: Unix time the record was created.
        max_rss_kb: Peak resident set of the worker process
            (``getrusage``; 0 when not captured -- cache hits, or
            platforms without the ``resource`` module).
        cpu_user_s: User CPU seconds the final attempt cost.
        cpu_sys_s: System CPU seconds the final attempt cost.
    """

    workload: str
    spec_key: str
    source: str
    wall_s: float
    cycles: int
    committed: int
    samples: dict[str, int] = field(default_factory=dict)
    jobs: int = 1
    attempts: int = 1
    backend: str = "detailed"
    timestamp: float = field(default_factory=time.time)
    max_rss_kb: float = 0.0
    cpu_user_s: float = 0.0
    cpu_sys_s: float = 0.0

    @property
    def cycles_per_sec(self) -> float:
        """Simulated cycles per wall second (0 for instant cache hits)."""
        if self.wall_s <= 0:
            return 0.0
        return self.cycles / self.wall_s

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict (one run-log line)."""
        doc = {
            "workload": self.workload,
            "spec_key": self.spec_key,
            "source": self.source,
            "wall_s": round(self.wall_s, 6),
            "cycles": self.cycles,
            "committed": self.committed,
            "cycles_per_sec": round(self.cycles_per_sec, 1),
            "samples": self.samples,
            "jobs": self.jobs,
            "attempts": self.attempts,
            "backend": self.backend,
            "timestamp": self.timestamp,
        }
        if self.max_rss_kb or self.cpu_user_s or self.cpu_sys_s:
            doc["resources"] = {
                "max_rss_kb": self.max_rss_kb,
                "cpu_user_s": self.cpu_user_s,
                "cpu_sys_s": self.cpu_sys_s,
            }
        return doc


class RunLog:
    """Append-only JSONL sink for :class:`RunMetrics` records.

    The log holds one lazily opened append-mode handle instead of
    reopening the file for every line (which a busy suite pays
    hundreds of times). Each record is written as one complete line
    and flushed immediately, so the append stays a single ``write``
    of a full line -- concurrent writers (parallel suites logging to
    a shared store) still interleave at line granularity, never
    mid-record.

    Args:
        path: Destination JSONL file (parents are created).
        buffered: Keep the handle open across records (default). When
            false, every record reopens the file -- the pre-existing
            behaviour, still useful when the log lives on a filesystem
            where long-lived handles are a liability.
    """

    def __init__(self, path: str | Path, buffered: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.buffered = bool(buffered)
        self._handle: Any = None

    # -- handle management ---------------------------------------------
    def _write_line(self, line: str) -> None:
        if not self.buffered:
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
            return
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(line + "\n")
        self._handle.flush()

    def flush(self) -> None:
        """Flush the buffered handle (no-op when nothing is open)."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Close the buffered handle; safe to call repeatedly."""
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- record emission -----------------------------------------------
    def record(self, metrics: RunMetrics) -> None:
        """Append one metrics record as a JSON line."""
        self._write_line(json.dumps(metrics.to_json(), sort_keys=True))

    def record_suite(self, report) -> None:
        """Append one suite-execution record as a JSON line.

        Args:
            report: A :class:`~repro.engine.executor.SuiteReport`; the
                line carries ``"kind": "suite"`` plus the report's
                retry/timeout/pool-recovery counters and per-label
                outcomes, so resilience behaviour is auditable from
                the same log as the runs (``tea-repro stats``
                summarises both).
        """
        doc = {"kind": "suite", "timestamp": time.time()}
        doc.update(report.to_json())
        self._write_line(json.dumps(doc, sort_keys=True))

    def record_event(self, record: Mapping[str, Any]) -> None:
        """Append one live-telemetry record as a JSON line.

        Used for the executor's ``"kind": "heartbeat"`` and
        ``"kind": "resources"`` records; the record is written as-is
        (the caller supplies ``kind`` and timestamps). Each record is
        one flushed line, so a concurrently tailing
        :class:`~repro.engine.monitor.SuiteMonitor` never sees a torn
        write.
        """
        self._write_line(json.dumps(dict(record), sort_keys=True))

    def record_trace(
        self,
        spec: Any,
        store: Any,
        cached: bool,
        wall_s: float = 0.0,
    ) -> None:
        """Append one columnar-trace record as a JSON line.

        Args:
            spec: The :class:`~repro.engine.spec.RunSpec` traced.
            store: The :class:`~repro.trace.store.TraceStore` captured
                or loaded; its row counts are recorded.
            cached: True when the trace came from the sidecar (no new
                simulation), false for a fresh capture.
            wall_s: Wall-clock seconds the capture cost (0 for hits).
        """
        self._write_line(
            json.dumps(
                {
                    "kind": "trace",
                    "workload": spec.workload,
                    "spec_key": spec.key,
                    "cached": bool(cached),
                    "wall_s": round(float(wall_s), 6),
                    "cycles": int(store.meta.get("cycles", 0)),
                    "rows": store.row_counts(),
                    "timestamp": time.time(),
                },
                sort_keys=True,
            )
        )

    def record_obs(
        self,
        events: list[dict[str, Any]],
        registry: Any = None,
    ) -> int:
        """Append observability records; returns how many were written.

        Trace events become ``"kind": "span"`` / ``"kind": "counters"``
        lines (see :func:`repro.obs.export.events_to_jsonl`); when a
        counter *registry* is given, its snapshot is appended as one
        final ``"kind": "counters"`` record named
        ``"registry.snapshot"``.
        """
        from repro.obs.export import events_to_jsonl

        records = events_to_jsonl(events)
        if registry is not None:
            snapshot = registry.snapshot()
            if any(snapshot.values()):
                records.append(
                    {
                        "kind": "counters",
                        "name": "registry.snapshot",
                        "ts": int(time.time() * 1e6),
                        "args": snapshot,
                    }
                )
        for record in records:
            self._write_line(json.dumps(record, sort_keys=True))
        return len(records)


def read_run_log(path: str | Path) -> list[dict[str, Any]]:
    """All records of a JSONL run log (skips malformed lines)."""
    records: list[dict[str, Any]] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            continue
    return records


def aggregate_records(
    records: Iterable[dict[str, Any]],
) -> dict[str, Any]:
    """Aggregate run-log records into one JSON-ready summary document.

    Records are partitioned by ``kind``: plain run records (no
    ``kind``), ``"suite"`` execution reports, and observability
    records (``"span"`` / ``"counters"``). Throughput aggregates --
    the overall rate and the per-run geometric mean -- are computed
    **only over simulated runs**: store and memo hits are near-instant
    and carry ``cycles_per_sec == 0``, so folding them in would drag
    every mean toward zero. Cache hits are reported as counts instead.
    """
    records = list(records)
    runs = [r for r in records if r.get("kind") is None]
    suites = [r for r in records if r.get("kind") == "suite"]
    traces = [r for r in records if r.get("kind") == "trace"]
    beats = [r for r in records if r.get("kind") == "heartbeat"]
    resources = [r for r in records if r.get("kind") == "resources"]
    span_count = sum(1 for r in records if r.get("kind") == "span")
    counter_count = sum(
        1 for r in records if r.get("kind") == "counters"
    )

    by_source = {source: 0 for source in SOURCES}
    wall_by_source = {source: 0.0 for source in SOURCES}
    sim_cycles = 0
    log_rates: list[float] = []
    per_workload: dict[str, dict[str, float]] = {}
    per_backend: dict[str, dict[str, float]] = {}
    for rec in runs:
        source = rec.get("source", "simulated")
        if source not in by_source:
            by_source[source] = 0
            wall_by_source[source] = 0.0
        by_source[source] += 1
        wall_by_source[source] += float(rec.get("wall_s", 0.0))
        tier = per_backend.setdefault(
            rec.get("backend", "detailed"),
            {"runs": 0, "sim_cycles": 0, "sim_wall_s": 0.0},
        )
        tier["runs"] += 1
        if source == "simulated":
            tier["sim_cycles"] += int(rec.get("cycles", 0))
            tier["sim_wall_s"] += float(rec.get("wall_s", 0.0))
        row = per_workload.setdefault(
            rec.get("workload", "?"),
            {s: 0 for s in SOURCES}
            | {"wall_s": 0.0, "cycles": 0, "sim_wall_s": 0.0},
        )
        row[source] = row.get(source, 0) + 1
        row["wall_s"] += float(rec.get("wall_s", 0.0))
        if source == "simulated":
            cycles = int(rec.get("cycles", 0))
            wall = float(rec.get("wall_s", 0.0))
            sim_cycles += cycles
            row["cycles"] += cycles
            row["sim_wall_s"] += wall
            if cycles > 0 and wall > 0:
                log_rates.append(math.log(cycles / wall))

    sim_wall = wall_by_source.get("simulated", 0.0)
    rate = sim_cycles / sim_wall if sim_wall > 0 else 0.0
    geomean = (
        math.exp(sum(log_rates) / len(log_rates)) if log_rates else 0.0
    )
    workloads = {
        name: {
            "simulated": int(row["simulated"]),
            "store": int(row["store"]),
            "memo": int(row["memo"]),
            "wall_s": round(row["wall_s"], 6),
            "sim_cycles": int(row["cycles"]),
            "sim_cycles_per_sec": round(
                row["cycles"] / row["sim_wall_s"], 1
            )
            if row["sim_wall_s"] > 0
            else 0.0,
        }
        for name, row in sorted(per_workload.items())
    }
    doc: dict[str, Any] = {
        "runs": {
            "total": len(runs),
            "by_source": {
                source: count
                for source, count in sorted(by_source.items())
            },
            "cache_hits": by_source.get("store", 0)
            + by_source.get("memo", 0),
            "sim_cycles": sim_cycles,
            "sim_wall_s": round(sim_wall, 6),
            "sim_cycles_per_sec": round(rate, 1),
            "sim_cycles_per_sec_geomean": round(geomean, 1),
        },
        "backends": {
            name: {
                "runs": int(row["runs"]),
                "sim_cycles": int(row["sim_cycles"]),
                "sim_wall_s": round(row["sim_wall_s"], 6),
                "sim_cycles_per_sec": round(
                    row["sim_cycles"] / row["sim_wall_s"], 1
                )
                if row["sim_wall_s"] > 0
                else 0.0,
            }
            for name, row in sorted(per_backend.items())
        },
        "workloads": workloads,
        "suites": {
            "executions": len(suites),
            "retries": sum(int(r.get("retries", 0)) for r in suites),
            "timeouts": sum(int(r.get("timeouts", 0)) for r in suites),
            "pool_recreations": sum(
                int(r.get("pool_recreations", 0)) for r in suites
            ),
            "failed_labels": sum(
                len(r.get("failed", ())) for r in suites
            ),
            "stalls": sum(int(r.get("stalls", 0)) for r in suites),
        },
        "live": {
            "heartbeats": len(beats),
            "stall_flags": sum(
                1 for r in beats if r.get("phase") == "stalled"
            ),
            "resources": len(resources),
            "max_rss_kb": round(
                max(
                    (float(r.get("max_rss_kb", 0.0)) for r in resources),
                    default=0.0,
                ),
                1,
            ),
            "cpu_user_s": round(
                sum(float(r.get("cpu_user_s", 0.0)) for r in resources),
                6,
            ),
            "cpu_sys_s": round(
                sum(float(r.get("cpu_sys_s", 0.0)) for r in resources),
                6,
            ),
        },
        "obs": {"spans": span_count, "counters": counter_count},
        "traces": {
            "captures": sum(1 for r in traces if not r.get("cached")),
            "loads": sum(1 for r in traces if r.get("cached")),
            "capture_wall_s": round(
                sum(
                    float(r.get("wall_s", 0.0))
                    for r in traces
                    if not r.get("cached")
                ),
                6,
            ),
            "rows": sum(
                sum(int(n) for n in r.get("rows", {}).values())
                for r in traces
            ),
        },
    }
    return doc


def summarize_records_json(
    records: Iterable[dict[str, Any]],
) -> dict[str, Any]:
    """The machine-readable run-log summary (``tea-repro stats --json``).

    The document leads with ``"schema": "tea-stats-v1"``; readers
    check it via :func:`validate_stats_doc` before trusting the rest.
    """
    return {"schema": STATS_SCHEMA, **aggregate_records(records)}


def summarize_records(records: Iterable[dict[str, Any]]) -> str:
    """Render a run-log summary (totals plus a per-workload table)."""
    from repro.experiments.runner import format_table

    records = list(records)
    agg = aggregate_records(records)
    suites = [r for r in records if r.get("kind") == "suite"]
    runs = agg["runs"]
    obs_counts = agg["obs"]
    trace_counts = agg["traces"]
    live = agg["live"]
    have_obs = obs_counts["spans"] or obs_counts["counters"]
    have_traces = trace_counts["captures"] or trace_counts["loads"]
    have_live = live["heartbeats"] or live["resources"]
    if not runs["total"] and not suites and not have_obs \
            and not have_traces and not have_live:
        return "run log: empty (no engine runs recorded yet)"
    if not runs["total"]:
        lines = []
        if suites:
            lines.append(_summarize_suites(suites))
        if have_obs:
            lines.append(_summarize_obs(obs_counts))
        if have_traces:
            lines.append(_summarize_traces(trace_counts))
        if have_live:
            lines.append(_summarize_live(live))
        return "\n".join(lines)

    by_source = runs["by_source"]
    total = runs["total"]
    lines = [
        f"run log: {total} run(s) -- "
        f"{by_source.get('simulated', 0)} simulated, "
        f"{by_source.get('store', 0)} store hit(s), "
        f"{by_source.get('memo', 0)} memo hit(s) "
        f"({runs['cache_hits'] / total:.0%} cached)",
        f"simulated: {runs['sim_cycles']:,} cycles in "
        f"{runs['sim_wall_s']:.2f}s wall "
        f"({runs['sim_cycles_per_sec']:,.0f} cycles/s, "
        f"geomean {runs['sim_cycles_per_sec_geomean']:,.0f} cycles/s "
        f"over simulated runs only)",
    ]
    backends = agg.get("backends", {})
    if backends:
        lines.append(
            "backends: "
            + "; ".join(
                f"{name} {row['runs']} run(s), "
                f"{row['sim_cycles_per_sec']:,.0f} sim cycles/s"
                for name, row in backends.items()
            )
        )
    lines.append("")
    rows = [
        [
            name,
            str(row["simulated"]),
            str(row["store"]),
            str(row["memo"]),
            f"{row['wall_s']:.2f}s",
            f"{row['sim_cycles']:,}",
        ]
        for name, row in agg["workloads"].items()
    ]
    lines.append(
        format_table(
            ["workload", "simulated", "store", "memo", "wall",
             "sim cycles"],
            rows,
        )
    )
    if suites:
        lines.append("")
        lines.append(_summarize_suites(suites))
    if have_obs:
        lines.append("")
        lines.append(_summarize_obs(obs_counts))
    if have_traces:
        lines.append("")
        lines.append(_summarize_traces(trace_counts))
    if have_live:
        lines.append("")
        lines.append(_summarize_live(live))
    return "\n".join(lines)


def _summarize_live(live: Mapping[str, Any]) -> str:
    """One-line summary of the live-telemetry records in the log."""
    return (
        f"live: {live['heartbeats']} heartbeat(s) "
        f"({live['stall_flags']} stall flag(s)), "
        f"{live['resources']} resource record(s), "
        f"peak RSS {live['max_rss_kb']:,.0f} kB"
    )


def _summarize_traces(trace_counts: Mapping[str, Any]) -> str:
    """One-line summary of the columnar-trace records in the log."""
    return (
        f"traces: {trace_counts['captures']} capture(s) "
        f"({trace_counts['capture_wall_s']:.2f}s wall), "
        f"{trace_counts['loads']} sidecar load(s), "
        f"{trace_counts['rows']:,} column row(s)"
    )


def _summarize_obs(obs_counts: Mapping[str, int]) -> str:
    """One-line summary of the observability records in the log."""
    return (
        f"obs: {obs_counts['spans']} span record(s), "
        f"{obs_counts['counters']} counter record(s)"
    )


def _summarize_suites(suites: list[dict[str, Any]]) -> str:
    """One-line resilience summary of the suite-execution records."""
    retries = sum(int(r.get("retries", 0)) for r in suites)
    timeouts = sum(int(r.get("timeouts", 0)) for r in suites)
    recreations = sum(
        int(r.get("pool_recreations", 0)) for r in suites
    )
    failed = sum(len(r.get("failed", ())) for r in suites)
    return (
        f"suites: {len(suites)} execution(s) -- {retries} retrie(s), "
        f"{timeouts} timeout(s), {recreations} pool recreation(s), "
        f"{failed} failed label(s)"
    )


def summarize_run_log(path: str | Path) -> str:
    """Read and summarise a JSONL run log."""
    return summarize_records(read_run_log(path))


# ----------------------------------------------------------------------
# BENCH files: committed throughput baselines for the regression gate.
# ----------------------------------------------------------------------

#: Schema tag written into every BENCH file.
BENCH_SCHEMA = "tea-bench-v1"


def write_bench_file(
    path: str | Path,
    workloads: Mapping[str, Mapping[str, float]],
    note: str = "",
) -> None:
    """Write a BENCH file of per-workload throughput measurements.

    Args:
        path: Destination (conventionally ``BENCH_<tag>.json``).
        workloads: name -> measurement mapping; each measurement must
            carry at least ``cycles_per_sec`` and may add context keys
            (e.g. ``before_cps``, ``speedup``).
        note: Free-form provenance note (machine, protocol, date).
    """
    doc: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "note": note,
        "workloads": {
            name: dict(entry) for name, entry in sorted(workloads.items())
        },
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def read_bench_file(path: str | Path) -> dict[str, dict[str, float]]:
    """The per-workload measurements of a BENCH file.

    Raises:
        ValueError: On a malformed file or unknown schema.
    """
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a {BENCH_SCHEMA} file "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    workloads = doc.get("workloads")
    if not isinstance(workloads, dict):
        raise ValueError(f"{path}: missing 'workloads' mapping")
    return {name: dict(entry) for name, entry in workloads.items()}


def compare_bench(
    baseline: Mapping[str, Mapping[str, float]],
    current: Mapping[str, Mapping[str, float]],
    tolerance: float = 0.2,
) -> list[str]:
    """Throughput regressions of *current* against *baseline*.

    A workload regresses when its ``cycles_per_sec`` drops more than
    *tolerance* (fractional) below the baseline's. Returns one message
    per regression (empty list = gate passes); workloads present in only
    one of the two files are ignored -- the gate compares overlap, so
    adding or retiring a workload does not trip it.
    """
    problems: list[str] = []
    for name in sorted(set(baseline) & set(current)):
        base_cps = float(baseline[name].get("cycles_per_sec", 0.0))
        cur_cps = float(current[name].get("cycles_per_sec", 0.0))
        if base_cps <= 0:
            continue
        floor = base_cps * (1.0 - tolerance)
        if cur_cps < floor:
            problems.append(
                f"{name}: {cur_cps:,.0f} cycles/s is "
                f"{1.0 - cur_cps / base_cps:.1%} below baseline "
                f"{base_cps:,.0f} (tolerance {tolerance:.0%})"
            )
    return problems
