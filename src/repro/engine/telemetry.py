"""Run telemetry: structured per-run metrics and the JSONL run log.

Every engine run -- simulated, loaded from the store, or served from
the in-process memo -- produces one :class:`RunMetrics` record. With a
:class:`RunLog` attached the engine appends each record as one JSON
line, giving a durable, greppable account of what actually simulated
versus what was a cache hit (``tea-repro stats`` summarises it, and the
acceptance check "a warm store performs zero new simulations" reads
exactly these counters).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Default run-log filename (under the store root).
DEFAULT_RUN_LOG_NAME = "runs.jsonl"

#: Metric sources, in increasing cheapness.
SOURCES = ("simulated", "store", "memo")


@dataclass
class RunMetrics:
    """Telemetry for one engine run.

    Attributes:
        workload: Workload name.
        spec_key: Canonical spec content hash.
        source: ``"simulated"`` (a new simulation ran), ``"store"``
            (cross-process store hit), or ``"memo"`` (in-process hit).
        wall_s: Wall-clock seconds this run cost the caller.
        cycles: Simulated core cycles of the run.
        committed: Committed instructions of the run.
        samples: Samples taken per attached sampler key.
        jobs: Worker count the run executed under (1 = in-process).
        attempts: Execution attempts the run took (>1 = it was
            retried after transient failures before succeeding).
        timestamp: Unix time the record was created.
    """

    workload: str
    spec_key: str
    source: str
    wall_s: float
    cycles: int
    committed: int
    samples: dict[str, int] = field(default_factory=dict)
    jobs: int = 1
    attempts: int = 1
    timestamp: float = field(default_factory=time.time)

    @property
    def cycles_per_sec(self) -> float:
        """Simulated cycles per wall second (0 for instant cache hits)."""
        if self.wall_s <= 0:
            return 0.0
        return self.cycles / self.wall_s

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict (one run-log line)."""
        return {
            "workload": self.workload,
            "spec_key": self.spec_key,
            "source": self.source,
            "wall_s": round(self.wall_s, 6),
            "cycles": self.cycles,
            "committed": self.committed,
            "cycles_per_sec": round(self.cycles_per_sec, 1),
            "samples": self.samples,
            "jobs": self.jobs,
            "attempts": self.attempts,
            "timestamp": self.timestamp,
        }


class RunLog:
    """Append-only JSONL sink for :class:`RunMetrics` records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def record(self, metrics: RunMetrics) -> None:
        """Append one metrics record as a JSON line."""
        line = json.dumps(metrics.to_json(), sort_keys=True)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")

    def record_suite(self, report) -> None:
        """Append one suite-execution record as a JSON line.

        Args:
            report: A :class:`~repro.engine.executor.SuiteReport`; the
                line carries ``"kind": "suite"`` plus the report's
                retry/timeout/pool-recovery counters and per-label
                outcomes, so resilience behaviour is auditable from
                the same log as the runs (``tea-repro stats``
                summarises both).
        """
        doc = {"kind": "suite", "timestamp": time.time()}
        doc.update(report.to_json())
        with open(self.path, "a") as handle:
            handle.write(json.dumps(doc, sort_keys=True) + "\n")


def read_run_log(path: str | Path) -> list[dict[str, Any]]:
    """All records of a JSONL run log (skips malformed lines)."""
    records: list[dict[str, Any]] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            continue
    return records


def summarize_records(records: Iterable[dict[str, Any]]) -> str:
    """Render a run-log summary (totals plus a per-workload table)."""
    from repro.experiments.runner import format_table

    records = list(records)
    suites = [r for r in records if r.get("kind") == "suite"]
    records = [r for r in records if r.get("kind") != "suite"]
    if not records and not suites:
        return "run log: empty (no engine runs recorded yet)"
    if not records:
        return _summarize_suites(suites)

    by_source = {source: 0 for source in SOURCES}
    wall_by_source = {source: 0.0 for source in SOURCES}
    sim_cycles = 0
    per_workload: dict[str, dict[str, float]] = {}
    for rec in records:
        source = rec.get("source", "simulated")
        if source not in by_source:
            by_source[source] = 0
            wall_by_source[source] = 0.0
        by_source[source] += 1
        wall_by_source[source] += float(rec.get("wall_s", 0.0))
        row = per_workload.setdefault(
            rec.get("workload", "?"),
            {s: 0 for s in SOURCES} | {"wall_s": 0.0, "cycles": 0},
        )
        row[source] = row.get(source, 0) + 1
        row["wall_s"] += float(rec.get("wall_s", 0.0))
        if source == "simulated":
            sim_cycles += int(rec.get("cycles", 0))
            row["cycles"] += int(rec.get("cycles", 0))

    sim_wall = wall_by_source["simulated"]
    rate = sim_cycles / sim_wall if sim_wall > 0 else 0.0
    total = len(records)
    hits = by_source["store"] + by_source["memo"]
    lines = [
        f"run log: {total} run(s) -- "
        f"{by_source['simulated']} simulated, "
        f"{by_source['store']} store hit(s), "
        f"{by_source['memo']} memo hit(s) "
        f"({hits / total:.0%} cached)",
        f"simulated: {sim_cycles:,} cycles in {sim_wall:.2f}s wall "
        f"({rate:,.0f} cycles/s)",
        "",
    ]
    rows = [
        [
            name,
            str(int(row["simulated"])),
            str(int(row["store"])),
            str(int(row["memo"])),
            f"{row['wall_s']:.2f}s",
            f"{int(row['cycles']):,}",
        ]
        for name, row in sorted(per_workload.items())
    ]
    lines.append(
        format_table(
            ["workload", "simulated", "store", "memo", "wall",
             "sim cycles"],
            rows,
        )
    )
    if suites:
        lines.append("")
        lines.append(_summarize_suites(suites))
    return "\n".join(lines)


def _summarize_suites(suites: list[dict[str, Any]]) -> str:
    """One-line resilience summary of the suite-execution records."""
    retries = sum(int(r.get("retries", 0)) for r in suites)
    timeouts = sum(int(r.get("timeouts", 0)) for r in suites)
    recreations = sum(
        int(r.get("pool_recreations", 0)) for r in suites
    )
    failed = sum(len(r.get("failed", ())) for r in suites)
    return (
        f"suites: {len(suites)} execution(s) -- {retries} retrie(s), "
        f"{timeouts} timeout(s), {recreations} pool recreation(s), "
        f"{failed} failed label(s)"
    )


def summarize_run_log(path: str | Path) -> str:
    """Read and summarise a JSONL run log."""
    return summarize_records(read_run_log(path))


# ----------------------------------------------------------------------
# BENCH files: committed throughput baselines for the regression gate.
# ----------------------------------------------------------------------

#: Schema tag written into every BENCH file.
BENCH_SCHEMA = "tea-bench-v1"


def write_bench_file(
    path: str | Path,
    workloads: Mapping[str, Mapping[str, float]],
    note: str = "",
) -> None:
    """Write a BENCH file of per-workload throughput measurements.

    Args:
        path: Destination (conventionally ``BENCH_<tag>.json``).
        workloads: name -> measurement mapping; each measurement must
            carry at least ``cycles_per_sec`` and may add context keys
            (e.g. ``before_cps``, ``speedup``).
        note: Free-form provenance note (machine, protocol, date).
    """
    doc: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "note": note,
        "workloads": {
            name: dict(entry) for name, entry in sorted(workloads.items())
        },
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def read_bench_file(path: str | Path) -> dict[str, dict[str, float]]:
    """The per-workload measurements of a BENCH file.

    Raises:
        ValueError: On a malformed file or unknown schema.
    """
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a {BENCH_SCHEMA} file "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    workloads = doc.get("workloads")
    if not isinstance(workloads, dict):
        raise ValueError(f"{path}: missing 'workloads' mapping")
    return {name: dict(entry) for name, entry in workloads.items()}


def compare_bench(
    baseline: Mapping[str, Mapping[str, float]],
    current: Mapping[str, Mapping[str, float]],
    tolerance: float = 0.2,
) -> list[str]:
    """Throughput regressions of *current* against *baseline*.

    A workload regresses when its ``cycles_per_sec`` drops more than
    *tolerance* (fractional) below the baseline's. Returns one message
    per regression (empty list = gate passes); workloads present in only
    one of the two files are ignored -- the gate compares overlap, so
    adding or retiring a workload does not trip it.
    """
    problems: list[str] = []
    for name in sorted(set(baseline) & set(current)):
        base_cps = float(baseline[name].get("cycles_per_sec", 0.0))
        cur_cps = float(current[name].get("cycles_per_sec", 0.0))
        if base_cps <= 0:
            continue
        floor = base_cps * (1.0 - tolerance)
        if cur_cps < floor:
            problems.append(
                f"{name}: {cur_cps:,.0f} cycles/s is "
                f"{1.0 - cur_cps / base_cps:.1%} below baseline "
                f"{base_cps:,.0f} (tolerance {tolerance:.0%})"
            )
    return problems
