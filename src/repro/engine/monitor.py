"""Parent-side live suite monitoring: status table + stall detection.

:class:`SuiteMonitor` is the single consumer for every live signal a
suite execution produces -- dispatch/retry notifications from the
:class:`~repro.engine.executor.SuiteExecutor`, ``"kind": "heartbeat"``
records shipped back from worker processes, and ``"kind": "resources"``
accounting settled with each attempt. It maintains one
:class:`LabelState` per suite label (``pending`` / ``running`` /
``retrying`` / ``stalled`` / ``done`` / ``failed`` / ``timeout``) and
implements the liveness rule the wall-clock timeout cannot: a label
whose worker has shown no activity (neither dispatch nor heartbeat)
for ``stall_after`` seconds is flagged **stalled** while the timeout
is still counting down.

The same class powers ``tea-repro monitor``: it folds records parsed
from a run-log JSONL (heartbeats, resources, suite outcomes) into the
identical table, and :func:`render_monitor` draws the refreshing text
view -- per-label progress bars, beat counts, and aggregate
throughput. Feeding is incremental (:meth:`SuiteMonitor.feed_file`
remembers its file offset), so an in-flight suite renders without
waiting for completion.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

#: Live statuses a label moves through (terminal: done/failed/timeout).
STATUS_PENDING = "pending"
STATUS_RUNNING = "running"
STATUS_RETRYING = "retrying"
STATUS_STALLED = "stalled"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"

_TERMINAL = (STATUS_DONE, STATUS_FAILED, STATUS_TIMEOUT)

#: Default stall threshold as a multiple of the heartbeat interval.
STALL_AFTER_BEATS = 4.0


@dataclass(slots=True)
class LabelState:
    """Everything the monitor knows about one suite label."""

    label: str
    status: str = STATUS_PENDING
    workload: str = ""
    backend: str = ""
    attempt: int = 0
    pid: int = 0
    cycles: int = 0
    committed: int = 0
    instrs_per_s: float = 0.0
    eta_s: float | None = None
    wall_s: float = 0.0
    beats: int = 0
    stall_events: int = 0
    dispatch_ts: float = 0.0
    last_beat_ts: float = 0.0
    max_rss_kb: float = 0.0
    cpu_user_s: float = 0.0
    cpu_sys_s: float = 0.0

    @property
    def last_activity_ts(self) -> float:
        """Newest proof of life (dispatch or heartbeat)."""
        return max(self.dispatch_ts, self.last_beat_ts)

    def to_json(self) -> dict[str, Any]:
        """JSON-ready row of the status table."""
        return {
            "label": self.label,
            "status": self.status,
            "workload": self.workload,
            "backend": self.backend,
            "attempt": self.attempt,
            "pid": self.pid,
            "cycles": self.cycles,
            "committed": self.committed,
            "instrs_per_s": round(self.instrs_per_s, 1),
            "eta_s": self.eta_s,
            "wall_s": round(self.wall_s, 3),
            "beats": self.beats,
            "stall_events": self.stall_events,
            "max_rss_kb": self.max_rss_kb,
        }


class SuiteMonitor:
    """Fold live suite signals into a per-label status table.

    Args:
        labels: Known suite labels (rows appear up front as
            ``pending``); labels discovered from records are added on
            the fly, so the run-log tailing path needs no pre-set.
        stall_after: Seconds without activity before a running label
            is flagged stalled (``None`` disables stall detection).
        clock: Epoch-seconds source, overridable for tests.
    """

    def __init__(
        self,
        labels: tuple[str, ...] | list[str] = (),
        stall_after: float | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.stall_after = (
            None if stall_after is None else float(stall_after)
        )
        self.clock = clock
        self.stalls = 0
        self.suite_done = False
        self._states: dict[str, LabelState] = {
            label: LabelState(label) for label in labels
        }

    # ------------------------------------------------------------------
    # Executor-facing notifications.
    # ------------------------------------------------------------------
    def _state(self, label: str) -> LabelState:
        state = self._states.get(label)
        if state is None:
            state = LabelState(label)
            self._states[label] = state
        return state

    def note_dispatch(
        self, label: str, attempt: int, ts: float | None = None
    ) -> None:
        """An attempt of *label* was handed to a worker."""
        state = self._state(label)
        state.status = STATUS_RUNNING
        state.attempt = max(state.attempt, int(attempt))
        state.dispatch_ts = self.clock() if ts is None else ts

    def note_retry(self, label: str, attempt: int) -> None:
        """An attempt failed and a retry is scheduled."""
        state = self._state(label)
        state.status = STATUS_RETRYING
        state.attempt = max(state.attempt, int(attempt))

    def note_done(self, label: str, status: str) -> None:
        """The executor settled *label* terminally."""
        self._state(label).status = status

    # ------------------------------------------------------------------
    # Record folding (heartbeat / resources / suite), shared with the
    # run-log tailing path.
    # ------------------------------------------------------------------
    def observe(self, record: dict[str, Any]) -> None:
        """Fold one live record into the table (unknown kinds: no-op)."""
        kind = record.get("kind")
        if kind == "heartbeat":
            self._observe_heartbeat(record)
        elif kind == "resources":
            self._observe_resources(record)
        elif kind == "suite":
            self._observe_suite(record)

    def _observe_heartbeat(self, record: dict[str, Any]) -> None:
        label = record.get("label") or record.get("workload") or "?"
        state = self._state(label)
        state.beats += 1
        state.workload = record.get("workload", state.workload)
        state.backend = record.get("backend", state.backend)
        state.attempt = max(
            state.attempt, int(record.get("attempt", 1))
        )
        state.pid = int(record.get("pid", state.pid))
        state.cycles = int(record.get("cycles", state.cycles))
        state.committed = int(record.get("committed", state.committed))
        state.instrs_per_s = float(
            record.get("instrs_per_s", state.instrs_per_s)
        )
        state.eta_s = record.get("eta_s", state.eta_s)
        state.wall_s = float(record.get("wall_s", state.wall_s))
        state.last_beat_ts = float(
            record.get("ts", state.last_beat_ts)
        )
        phase = record.get("phase")
        if phase == "stalled":
            if state.status not in _TERMINAL:
                state.status = STATUS_STALLED
            state.stall_events += 1
        elif phase == "done":
            if record.get("ok", True):
                state.status = STATUS_DONE
            elif state.status not in _TERMINAL:
                state.status = STATUS_RETRYING
        elif state.status not in _TERMINAL:
            # A beat from a stalled worker is proof of life again.
            state.status = STATUS_RUNNING

    def _observe_resources(self, record: dict[str, Any]) -> None:
        label = record.get("label") or "?"
        state = self._state(label)
        state.max_rss_kb = max(
            state.max_rss_kb, float(record.get("max_rss_kb", 0.0))
        )
        state.cpu_user_s += float(record.get("cpu_user_s", 0.0))
        state.cpu_sys_s += float(record.get("cpu_sys_s", 0.0))

    def _observe_suite(self, record: dict[str, Any]) -> None:
        self.suite_done = True
        for label, outcome in (record.get("outcomes") or {}).items():
            state = self._state(label)
            status = outcome.get("status")
            state.status = {
                "ok": STATUS_DONE,
                "failed": STATUS_FAILED,
                "timeout": STATUS_TIMEOUT,
            }.get(status, state.status)
            state.attempt = max(
                state.attempt, int(outcome.get("attempts", 1))
            )

    def feed_file(self, path: str, offset: int = 0) -> int:
        """Fold complete JSONL lines from *path* past *offset*.

        Returns the new offset (hand it back on the next call); only
        newline-terminated lines are consumed, so a record the writer
        is mid-append on is picked up next round, never torn. A
        missing file leaves the offset unchanged.
        """
        if not os.path.exists(path):
            return offset
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
        end = chunk.rfind(b"\n")
        if end < 0:
            return offset
        for raw in chunk[: end + 1].splitlines():
            try:
                record = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if isinstance(record, dict):
                self.observe(record)
        return offset + end + 1

    # ------------------------------------------------------------------
    # Stall detection.
    # ------------------------------------------------------------------
    def check_stalls(
        self, now: float | None = None
    ) -> list[dict[str, Any]]:
        """Flag silently stalled labels; returns their beat records.

        A label is stalled when it is (still) running but has produced
        no activity for :attr:`stall_after` seconds. The returned
        ``"kind": "heartbeat"`` / ``"phase": "stalled"`` records are
        ready for the run log; each label is flagged once per silence
        (a fresh beat rearms the detector).
        """
        if self.stall_after is None:
            return []
        now = self.clock() if now is None else now
        flagged: list[dict[str, Any]] = []
        for state in self._states.values():
            if state.status != STATUS_RUNNING:
                continue
            last = state.last_activity_ts
            if last <= 0.0 or now - last < self.stall_after:
                continue
            state.status = STATUS_STALLED
            state.stall_events += 1
            self.stalls += 1
            flagged.append(
                {
                    "kind": "heartbeat",
                    "phase": "stalled",
                    "label": state.label,
                    "workload": state.workload,
                    "backend": state.backend,
                    "pid": state.pid,
                    "attempt": max(state.attempt, 1),
                    "cycles": state.cycles,
                    "committed": state.committed,
                    "stalled_for_s": round(now - last, 3),
                    "ts": now,
                }
            )
        return flagged

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------
    def states(self) -> dict[str, LabelState]:
        """The live per-label table (insertion-ordered)."""
        return dict(self._states)

    def counts(self) -> dict[str, int]:
        """How many labels sit in each status."""
        counts: dict[str, int] = {}
        for state in self._states.values():
            counts[state.status] = counts.get(state.status, 0) + 1
        return counts

    def aggregate(self) -> dict[str, Any]:
        """Suite-wide throughput and progress totals."""
        live = [
            s for s in self._states.values()
            if s.status in (STATUS_RUNNING, STATUS_STALLED)
        ]
        return {
            "labels": len(self._states),
            "counts": self.counts(),
            "committed": sum(
                s.committed for s in self._states.values()
            ),
            "cycles": sum(s.cycles for s in self._states.values()),
            "instrs_per_s": sum(s.instrs_per_s for s in live),
            "beats": sum(s.beats for s in self._states.values()),
            "stalls": self.stalls,
            "max_rss_kb": max(
                (s.max_rss_kb for s in self._states.values()),
                default=0.0,
            ),
            "done": self.suite_done,
        }

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump: every row plus the aggregate."""
        return {
            "labels": {
                label: state.to_json()
                for label, state in self._states.items()
            },
            "aggregate": self.aggregate(),
        }


_BAR_WIDTH = 20

_STATUS_MARK = {
    STATUS_PENDING: " ",
    STATUS_RUNNING: ">",
    STATUS_RETRYING: "~",
    STATUS_STALLED: "!",
    STATUS_DONE: "=",
    STATUS_FAILED: "x",
    STATUS_TIMEOUT: "t",
}


def _fmt_count(value: float) -> str:
    """Humanise an instruction/cycle count (12.3M style)."""
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= factor:
            return f"{value / factor:.1f}{suffix}"
    return f"{value:.0f}"


def _bar(state: LabelState) -> str:
    """A text progress bar for one label.

    With an ETA the fill is real fractional progress
    (``wall / (wall + eta)``); terminal labels render full/empty; an
    in-flight label without an ETA shows a moving activity marker
    driven by the beat count.
    """
    if state.status == STATUS_DONE:
        return "[" + "#" * _BAR_WIDTH + "]"
    if state.status in (STATUS_FAILED, STATUS_TIMEOUT):
        return "[" + "-" * _BAR_WIDTH + "]"
    if state.eta_s is not None and state.wall_s > 0:
        fraction = state.wall_s / (state.wall_s + max(state.eta_s, 0.0))
        filled = max(0, min(_BAR_WIDTH, int(fraction * _BAR_WIDTH)))
        return "[" + "#" * filled + "." * (_BAR_WIDTH - filled) + "]"
    if state.beats == 0:
        return "[" + " " * _BAR_WIDTH + "]"
    pos = state.beats % _BAR_WIDTH
    cells = ["."] * _BAR_WIDTH
    cells[pos] = "#"
    return "[" + "".join(cells) + "]"


def render_monitor(
    monitor: SuiteMonitor, now: float | None = None
) -> str:
    """Draw the live status table as plain text.

    One row per label -- status, attempt, beats, committed
    instructions, live throughput, progress bar -- plus the aggregate
    footer ``tea-repro monitor`` refreshes on.
    """
    states = monitor.states()
    width = max((len(label) for label in states), default=5)
    width = max(width, len("label"))
    lines = [
        f"{'label':<{width}}  {'status':<8} {'att':>3} {'beats':>5} "
        f"{'committed':>10} {'instrs/s':>9}  progress"
    ]
    for label, state in states.items():
        mark = _STATUS_MARK.get(state.status, "?")
        lines.append(
            f"{label:<{width}}  {state.status:<8} "
            f"{max(state.attempt, 0):>3} {state.beats:>5} "
            f"{_fmt_count(state.committed):>10} "
            f"{_fmt_count(state.instrs_per_s):>8}/s "
            f"{_bar(state)} {mark}"
        )
    agg = monitor.aggregate()
    counts = ", ".join(
        f"{status}: {count}"
        for status, count in sorted(agg["counts"].items())
    )
    lines.append(
        f"total: {_fmt_count(agg['committed'])} instrs, "
        f"{_fmt_count(agg['instrs_per_s'])}/s live, "
        f"{agg['beats']} beat(s), {agg['stalls']} stall(s)"
        + (f", peak RSS {agg['max_rss_kb']:.0f} KB"
           if agg["max_rss_kb"] else "")
    )
    lines.append(f"labels: {counts or 'none yet'}")
    if agg["done"]:
        lines.append("suite: finished")
    return "\n".join(lines)
