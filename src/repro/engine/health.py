"""Declarative run-health gating: SLO rules over a run log.

``tea-repro health <run-log> --slo rules.json`` reads the same JSONL
run log that :class:`~repro.engine.telemetry.RunLog` writes -- run
records, suite reports, and the live ``heartbeat``/``resources``
records -- measures a small set of health indicators, and checks them
against a committed ``tea-slo-v1`` rules file. Any violated rule is a
non-zero exit, which is what lets CI fail a build whose suite ran to
completion but ran *badly*: workers that went silent for seconds,
throughput that cratered, retry storms, or memory blow-ups.

Rules (all optional; absent rules are not checked):

``max_stall_s``
    Longest observed heartbeat silence (seconds) a running worker may
    show. Measured from the gaps between consecutive heartbeats of
    each label/attempt and from ``phase: "stalled"`` flags.
``min_cycles_per_sec``
    Floor on aggregate simulated throughput over the log's runs.
``max_retry_rate``
    Ceiling on retries per dispatched label (0.5 = one retry per two
    labels) across the log's suite executions.
``max_rss_kb``
    Ceiling on the peak worker resident set (kilobytes, as reported
    by ``getrusage``).
``max_failed_labels``
    Ceiling on terminally failed suite labels (default expectation
    for CI is 0, but the rule is only checked when present).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.telemetry import aggregate_records

#: Schema tag every SLO rules file must carry.
SLO_SCHEMA = "tea-slo-v1"

#: The rule names :func:`evaluate_health` understands.
RULE_NAMES = (
    "max_stall_s",
    "min_cycles_per_sec",
    "max_retry_rate",
    "max_rss_kb",
    "max_failed_labels",
)


def read_slo_file(path: str | Path) -> dict[str, float]:
    """The rules mapping of a ``tea-slo-v1`` file.

    Raises:
        ValueError: On a malformed file, unknown schema, or unknown
            rule name (typoed rules must not silently pass).
    """
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("schema") != SLO_SCHEMA:
        found = doc.get("schema") if isinstance(doc, dict) else None
        raise ValueError(
            f"{path}: not a {SLO_SCHEMA} file (schema={found!r})"
        )
    rules = doc.get("rules")
    if not isinstance(rules, dict) or not rules:
        raise ValueError(f"{path}: missing or empty 'rules' mapping")
    unknown = sorted(set(rules) - set(RULE_NAMES))
    if unknown:
        raise ValueError(
            f"{path}: unknown rule(s) {', '.join(unknown)} "
            f"(known: {', '.join(RULE_NAMES)})"
        )
    return {name: float(value) for name, value in rules.items()}


def max_heartbeat_gap(
    records: Iterable[Mapping[str, Any]],
) -> float:
    """Longest heartbeat silence (seconds) observed in *records*.

    The gap is measured between consecutive heartbeats of the same
    label *while it was running* -- i.e. from ``start``/``progress``
    beats to the next beat of that label, including its ``done``. A
    label's attempts are tracked separately (a retry restarts the
    clock), and explicit ``phase: "stalled"`` flags contribute their
    ``stalled_for_s`` directly, so a worker that died silently (never
    beat again) still registers.
    """
    last: dict[tuple[str, int], float] = {}
    worst = 0.0
    for rec in records:
        if rec.get("kind") != "heartbeat":
            continue
        phase = rec.get("phase")
        ts = float(rec.get("ts", 0.0))
        key = (str(rec.get("label", "")), int(rec.get("attempt", 1)))
        if phase == "stalled":
            worst = max(worst, float(rec.get("stalled_for_s", 0.0)))
            continue
        prev = last.get(key)
        if prev is not None and ts > prev:
            worst = max(worst, ts - prev)
        if phase == "done":
            last.pop(key, None)
        else:
            last[key] = ts
    return worst


@dataclass
class HealthReport:
    """Measured indicators plus the rules they violated."""

    metrics: dict[str, float] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    rules: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every checked rule passed."""
        return not self.violations

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready document (``tea-repro health --json``)."""
        return {
            "ok": self.ok,
            "metrics": dict(self.metrics),
            "rules": dict(self.rules),
            "violations": list(self.violations),
        }

    def render(self) -> str:
        """Human-readable verdict, one line per checked rule."""
        lines = [
            "health: " + ("PASS" if self.ok else "FAIL")
            + f" ({len(self.rules)} rule(s) checked)"
        ]
        for name in RULE_NAMES:
            if name not in self.rules:
                continue
            measured = self.metrics.get(_METRIC_FOR_RULE[name], 0.0)
            verdict = "violated" if any(
                v.startswith(name) for v in self.violations
            ) else "ok"
            lines.append(
                f"  {name} = {self.rules[name]:g}: "
                f"measured {measured:g} -- {verdict}"
            )
        for violation in self.violations:
            lines.append(f"  FAIL {violation}")
        return "\n".join(lines)


#: Which measured indicator each rule is checked against.
_METRIC_FOR_RULE = {
    "max_stall_s": "max_stall_s",
    "min_cycles_per_sec": "sim_cycles_per_sec",
    "max_retry_rate": "retry_rate",
    "max_rss_kb": "max_rss_kb",
    "max_failed_labels": "failed_labels",
}


def measure_health(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, float]:
    """The health indicators of a run log's records."""
    records = list(records)
    agg = aggregate_records(records)
    suites = [r for r in records if r.get("kind") == "suite"]
    labels = sum(int(r.get("labels", 0)) for r in suites)
    retries = agg["suites"]["retries"]
    return {
        "max_stall_s": round(max_heartbeat_gap(records), 6),
        "sim_cycles_per_sec": agg["runs"]["sim_cycles_per_sec"],
        "retry_rate": round(retries / labels, 6) if labels else 0.0,
        "max_rss_kb": agg["live"]["max_rss_kb"],
        "failed_labels": float(agg["suites"]["failed_labels"]),
        "heartbeats": float(agg["live"]["heartbeats"]),
        "stall_flags": float(agg["live"]["stall_flags"]),
        "simulated_runs": float(
            agg["runs"]["by_source"].get("simulated", 0)
        ),
    }


def evaluate_health(
    records: Iterable[Mapping[str, Any]],
    rules: Mapping[str, float],
) -> HealthReport:
    """Check a run log's records against SLO *rules*.

    ``min_cycles_per_sec`` is only enforced when the log contains at
    least one simulated run (a log of pure cache hits has no
    throughput to judge); every other rule checks unconditionally --
    an empty measurement is a 0, which trivially passes ceilings.
    """
    metrics = measure_health(records)
    report = HealthReport(metrics=metrics, rules=dict(rules))

    def ceiling(rule: str, metric: str, unit: str = "") -> None:
        if rule not in rules:
            return
        limit = float(rules[rule])
        value = metrics[metric]
        if value > limit:
            report.violations.append(
                f"{rule}: measured {value:g}{unit} exceeds "
                f"limit {limit:g}{unit}"
            )

    ceiling("max_stall_s", "max_stall_s", "s")
    ceiling("max_retry_rate", "retry_rate")
    ceiling("max_rss_kb", "max_rss_kb", "kB")
    ceiling("max_failed_labels", "failed_labels")
    if "min_cycles_per_sec" in rules and metrics["simulated_runs"]:
        limit = float(rules["min_cycles_per_sec"])
        value = metrics["sim_cycles_per_sec"]
        if value < limit:
            report.violations.append(
                f"min_cycles_per_sec: measured {value:g} cycles/s "
                f"is below floor {limit:g}"
            )
    return report


def check_run_log(
    path: str | Path, slo_path: str | Path
) -> HealthReport:
    """Read a run log and an SLO file; evaluate the rules."""
    from repro.engine.telemetry import read_run_log

    return evaluate_health(read_run_log(path), read_slo_file(slo_path))


__all__ = [
    "RULE_NAMES",
    "SLO_SCHEMA",
    "HealthReport",
    "check_run_log",
    "evaluate_health",
    "max_heartbeat_gap",
    "measure_health",
    "read_slo_file",
]
