"""Deterministic fault injection for resilient-executor testing.

:class:`FaultyWorker` wraps a worker callable with a per-label,
per-attempt fault schedule -- raise deep in a helper, hang, or kill
the worker process outright -- so the executor's retry, timeout, and
pool-recovery paths can be exercised reproducibly from tests and the
CI smoke step. Attempt counting crosses process boundaries through
exclusive-create marker files in a shared state directory, so the
schedule holds no matter which worker process serves which attempt.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence
from typing import Any

#: Schedulable actions, one per attempt of a label.
ACTION_OK = "ok"
ACTION_RAISE = "raise"
ACTION_HANG = "hang"
ACTION_KILL = "kill"

ACTIONS = (ACTION_OK, ACTION_RAISE, ACTION_HANG, ACTION_KILL)


class InjectedFault(RuntimeError):
    """The exception :data:`ACTION_RAISE` raises inside the worker."""


def _fault_helper_inner(label: str, attempt: int) -> None:
    """Innermost frame of an injected failure.

    Exists so tests can assert the *remote* traceback reaches the
    failure report: a worker-side stack contains this frame, the
    parent's local re-raise site does not.
    """
    raise InjectedFault(
        f"injected fault in {label!r} (attempt {attempt})"
    )


def _fault_helper(label: str, attempt: int) -> None:
    _fault_helper_inner(label, attempt)


class FaultyWorker:
    """Picklable worker wrapper executing a deterministic fault plan.

    Args:
        state_dir: Directory for cross-process attempt markers (use a
            fresh temp dir per execution; reusing one resumes its
            attempt counts).
        plan: label -> sequence of actions, one per attempt, each of
            :data:`ACTIONS`. Attempts beyond the sequence (and labels
            absent from the plan) run :data:`ACTION_OK`.
        fn: Inner worker called for :data:`ACTION_OK` attempts; when
            ``None`` a stub payload ``{"ok": label, "attempt": n}`` is
            returned, keeping executor-level tests simulation-free.
        hang_s: How long :data:`ACTION_HANG` sleeps before returning
            normally (long enough that only a timeout ends it).
    """

    def __init__(
        self,
        state_dir: str | Path,
        plan: Mapping[str, Sequence[str]],
        fn: Callable[
            [tuple[str, Any]], tuple[str, dict[str, Any]]
        ] | None = None,
        hang_s: float = 60.0,
    ) -> None:
        self.state_dir = str(state_dir)
        self.plan = {
            label: tuple(actions) for label, actions in plan.items()
        }
        for label, actions in self.plan.items():
            for action in actions:
                if action not in ACTIONS:
                    raise ValueError(
                        f"unknown fault action {action!r} for "
                        f"{label!r}; expected one of {ACTIONS}"
                    )
        self.fn = fn
        self.hang_s = float(hang_s)

    def attempts(self, label: str) -> int:
        """How many attempts of *label* have started so far."""
        base = Path(self.state_dir)
        count = 0
        while (base / f"{label}.attempt{count + 1}").exists():
            count += 1
        return count

    def _claim_attempt(self, label: str) -> int:
        """Atomically claim this call's 1-based attempt number."""
        base = Path(self.state_dir)
        base.mkdir(parents=True, exist_ok=True)
        attempt = 1
        while True:
            try:
                fd = os.open(
                    base / f"{label}.attempt{attempt}",
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                attempt += 1
                continue
            os.close(fd)
            return attempt

    def __call__(
        self, item: tuple[str, Any]
    ) -> tuple[str, dict[str, Any]]:
        label = item[0]
        attempt = self._claim_attempt(label)
        actions = self.plan.get(label, ())
        action = (
            actions[attempt - 1]
            if attempt <= len(actions)
            else ACTION_OK
        )
        if action == ACTION_RAISE:
            _fault_helper(label, attempt)
        elif action == ACTION_HANG:
            time.sleep(self.hang_s)
        elif action == ACTION_KILL:
            # Simulates an OOM kill: the process dies without cleanup,
            # breaking the whole ProcessPoolExecutor.
            os._exit(23)
        if self.fn is None:
            return label, {"ok": label, "attempt": attempt}
        return self.fn(item)
