"""Executing run specs and (de)serialising completed runs.

:func:`simulate_spec` turns a :class:`~repro.engine.spec.RunSpec` into a
live :class:`BenchmarkRun`; :func:`run_to_payload` /
:func:`run_from_payload` convert completed runs to and from the
JSON-able payload the :class:`~repro.engine.store.RunStore` persists.
Payloads keep every raw profile in accumulator insertion order, so a
run reloaded from the store reproduces *bit-identical* profiles and
error metrics (float summation order included) -- the property the
store round-trip tests pin down.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.core.error import pics_error
from repro.core.events import Event, event_mask
from repro.core.io import raw_from_list, raw_to_list
from repro.core.pics import PicsProfile, RawProfile
from repro.core.samplers import Sampler, make_sampler
from repro.core.states import CommitState
from repro.engine.spec import RunSpec
from repro.version import MODEL_VERSION
from repro.uarch.core import CoreResult, FlushStats, simulate
from repro.workloads import Workload, build

#: Schema identifier written into every stored-run payload.
PAYLOAD_SCHEMA = "tea-run-v1"


@dataclass
class BenchmarkRun:
    """One benchmark simulated with a set of samplers attached."""

    workload: Workload
    result: CoreResult
    samplers: dict[str, Any] = field(default_factory=dict)

    @property
    def golden(self) -> PicsProfile:
        """Golden-reference profile of this run."""
        return self.result.golden_profile()

    def profile(self, technique: str) -> PicsProfile:
        """A technique's sampled profile.

        Raises:
            KeyError: If the technique was not attached to this run.
        """
        return self.samplers[technique].profile()

    def error(self, technique: str) -> float:
        """Instruction-granularity PICS error of a technique (Sec. 4)."""
        sampler = self.samplers[technique]
        return pics_error(
            sampler.profile(), self.golden, event_mask(sampler.events)
        )


class LoadedSampler:
    """Read-only stand-in for a :class:`Sampler` rebuilt from the store.

    Exposes the attributes experiments consume (``name``, ``events``,
    ``mask``, ``raw``, sample counters, and :meth:`profile`); it cannot
    be attached to a core.
    """

    def __init__(
        self,
        name: str,
        period: int,
        events: frozenset[Event],
        raw: RawProfile,
        samples_taken: int,
        samples_dropped: int,
    ) -> None:
        self.name = name
        self.period = period
        self.events = frozenset(events)
        self.mask = event_mask(self.events)
        self.raw = raw
        self.samples_taken = samples_taken
        self.samples_dropped = samples_dropped

    def profile(self) -> PicsProfile:
        """The sampled PICS profile (instruction granularity)."""
        return PicsProfile.from_raw(self.name, self.raw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LoadedSampler({self.name!r}, period={self.period}, "
            f"samples={self.samples_taken})"
        )


def build_workload(spec: RunSpec) -> Workload:
    """Build the workload a spec names (fresh program and state).

    Raises:
        KeyError: For an unknown workload name.
    """
    return build(spec.workload, scale=spec.scale, **spec.workload_kwargs)


def simulate_spec(
    spec: RunSpec, workload: Workload | None = None
) -> BenchmarkRun:
    """Simulate one spec on its backend, sampler plan attached.

    The functional tier has no cycle-level behaviour to sample, so its
    runs carry no samplers (the golden profile is still produced); the
    detailed and sampled tiers attach the full plan.
    """
    workload = workload or build_workload(spec)
    backend = getattr(spec, "backend", "detailed")
    if backend == "functional":
        from repro.backends.functional import simulate_functional

        result = simulate_functional(
            workload.program,
            config=spec.config,
            arch_state=workload.fresh_state(),
        )
        return BenchmarkRun(workload=workload, result=result, samplers={})
    samplers: dict[str, Sampler] = {}
    for key, technique, period, seed in spec.sampler_plan():
        samplers[key] = make_sampler(
            technique, period, jitter=spec.jitter, seed=seed
        )
    if backend == "sampled":
        from repro.backends.sampled import SampledBackend

        result = SampledBackend(plan=spec.window_plan()).simulate(
            workload.program,
            config=spec.config,
            samplers=list(samplers.values()),
            arch_state=workload.fresh_state(),
        )
    else:
        result = simulate(
            workload.program,
            config=spec.config,
            samplers=list(samplers.values()),
            arch_state=workload.fresh_state(),
        )
    return BenchmarkRun(workload=workload, result=result,
                        samplers=samplers)


def run_to_payload(
    spec: RunSpec, run: BenchmarkRun, wall_s: float | None = None
) -> dict[str, Any]:
    """A JSON-able stored-run payload for a completed run."""
    result = run.result
    return {
        "schema": PAYLOAD_SCHEMA,
        "model_version": MODEL_VERSION,
        "spec_key": spec.key,
        "workload": spec.workload,
        "backend": getattr(spec, "backend", "detailed"),
        "wall_s": wall_s,
        "cycles": result.cycles,
        "committed": result.committed,
        "golden_raw": raw_to_list(result.golden_raw),
        "event_counts": [
            [index, psv, count]
            for (index, psv), count in result.event_counts.items()
        ],
        "exec_counts": [
            [index, count]
            for index, count in result.exec_counts.items()
        ],
        "stall_histogram": [
            [int(length), int(count)]
            for length, count in result.stall_histogram.items()
        ],
        "evented_execs": result.evented_execs,
        "combined_execs": result.combined_execs,
        "flushes": {
            "mispredicts": result.flushes.mispredicts,
            "serial": result.flushes.serial,
            "ordering": result.flushes.ordering,
        },
        "state_cycles": [
            [state.name, count]
            for state, count in result.state_cycles.items()
        ],
        "samplers": [
            {
                "key": key,
                "name": sampler.name,
                "period": sampler.period,
                "events": [e.name for e in sorted(sampler.events)],
                "samples_taken": sampler.samples_taken,
                "samples_dropped": sampler.samples_dropped,
                "raw": raw_to_list(sampler.raw),
            }
            for key, sampler in run.samplers.items()
        ],
    }


def run_from_payload(
    payload: dict[str, Any], workload: Workload
) -> BenchmarkRun:
    """Rebuild a :class:`BenchmarkRun` from a stored-run payload.

    The returned run carries a reconstructed :class:`CoreResult` with
    every field experiments consume; the live microarchitectural
    substrates (memory hierarchy, branch predictor) are not persisted
    and come back as ``None``.

    Raises:
        ValueError: On an unknown payload schema.
    """
    if payload.get("schema") != PAYLOAD_SCHEMA:
        raise ValueError(
            f"unknown stored-run schema {payload.get('schema')!r}"
        )
    samplers: dict[str, LoadedSampler] = {}
    for entry in payload["samplers"]:
        samplers[entry["key"]] = LoadedSampler(
            name=entry["name"],
            period=int(entry["period"]),
            events=frozenset(Event[name] for name in entry["events"]),
            raw=raw_from_list(entry["raw"]),
            samples_taken=int(entry["samples_taken"]),
            samples_dropped=int(entry["samples_dropped"]),
        )
    result = CoreResult(
        program=workload.program,
        cycles=int(payload["cycles"]),
        committed=int(payload["committed"]),
        golden_raw=raw_from_list(payload["golden_raw"]),
        event_counts={
            (int(index), int(psv)): int(count)
            for index, psv, count in payload["event_counts"]
        },
        exec_counts={
            int(index): int(count)
            for index, count in payload["exec_counts"]
        },
        stall_histogram=Counter(
            {
                int(length): int(count)
                for length, count in payload["stall_histogram"]
            }
        ),
        evented_execs=int(payload["evented_execs"]),
        combined_execs=int(payload["combined_execs"]),
        flushes=FlushStats(**payload["flushes"]),
        hierarchy=None,
        predictor=None,
        samplers=list(samplers.values()),
        state_cycles={
            CommitState[name]: int(count)
            for name, count in payload["state_cycles"]
        },
    )
    return BenchmarkRun(workload=workload, result=result,
                        samplers=samplers)
