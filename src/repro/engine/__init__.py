"""The simulation engine layer.

Separates *simulation* from *analysis* (the paper's own TraceDoctor
out-of-band methodology) as a real architectural layer:

* :mod:`repro.engine.spec` -- canonical, content-hashed
  :class:`RunSpec` descriptions of a run;
* :mod:`repro.engine.store` -- the versioned on-disk
  :class:`RunStore` of completed runs;
* :mod:`repro.engine.executor` -- parallel :class:`SuiteExecutor`
  fan-out with retry, per-workload failure reporting, and worker
  heartbeats;
* :mod:`repro.engine.monitor` -- the :class:`SuiteMonitor` live view
  over heartbeat records (stall detection, progress rendering);
* :mod:`repro.engine.health` -- declarative ``tea-slo-v1`` SLO rules
  evaluated against a run log (:func:`evaluate_health`);
* :mod:`repro.engine.telemetry` -- :class:`RunMetrics` records and the
  JSONL :class:`RunLog`;
* :mod:`repro.engine.engine` -- the :class:`Engine` orchestrator
  (memo -> store -> simulate).

:class:`repro.experiments.ExperimentRunner` is a thin façade over this
package.
"""

from repro.engine.benchmark import (
    BenchReport,
    ProfileMismatchError,
    WorkloadBench,
    format_report,
    run_suite,
    run_workload,
)
from repro.engine.engine import Engine
from repro.engine.executor import (
    LabelOutcome,
    SuiteExecutionError,
    SuiteExecutor,
    SuiteReport,
    SuiteResult,
    backoff_delay,
    simulate_to_payload,
)
from repro.engine.faults import FaultyWorker, InjectedFault
from repro.engine.health import (
    SLO_SCHEMA,
    HealthReport,
    check_run_log,
    evaluate_health,
    measure_health,
    read_slo_file,
)
from repro.engine.monitor import (
    LabelState,
    SuiteMonitor,
    render_monitor,
)
from repro.engine.runs import (
    PAYLOAD_SCHEMA,
    BenchmarkRun,
    LoadedSampler,
    build_workload,
    run_from_payload,
    run_to_payload,
    simulate_spec,
)
from repro.engine.spec import (
    DEFAULT_PERIOD,
    DEFAULT_SCALE,
    MODEL_VERSION,
    TECHNIQUES,
    RunSpec,
    canonical,
)
from repro.engine.store import RunStore, default_store_root
from repro.engine.telemetry import (
    DEFAULT_RUN_LOG_NAME,
    STATS_SCHEMA,
    RunLog,
    RunMetrics,
    aggregate_records,
    compare_bench,
    read_bench_file,
    read_run_log,
    summarize_records,
    summarize_records_json,
    summarize_run_log,
    validate_stats_doc,
    write_bench_file,
)

__all__ = [
    "BenchReport",
    "BenchmarkRun",
    "DEFAULT_PERIOD",
    "DEFAULT_RUN_LOG_NAME",
    "DEFAULT_SCALE",
    "Engine",
    "FaultyWorker",
    "HealthReport",
    "InjectedFault",
    "LabelOutcome",
    "LabelState",
    "LoadedSampler",
    "MODEL_VERSION",
    "PAYLOAD_SCHEMA",
    "ProfileMismatchError",
    "RunLog",
    "RunMetrics",
    "RunSpec",
    "RunStore",
    "SLO_SCHEMA",
    "STATS_SCHEMA",
    "SuiteExecutionError",
    "SuiteExecutor",
    "SuiteMonitor",
    "SuiteReport",
    "SuiteResult",
    "TECHNIQUES",
    "WorkloadBench",
    "aggregate_records",
    "backoff_delay",
    "build_workload",
    "canonical",
    "check_run_log",
    "compare_bench",
    "default_store_root",
    "evaluate_health",
    "format_report",
    "measure_health",
    "read_bench_file",
    "read_run_log",
    "read_slo_file",
    "render_monitor",
    "run_from_payload",
    "run_suite",
    "run_to_payload",
    "run_workload",
    "simulate_spec",
    "simulate_to_payload",
    "summarize_records",
    "summarize_records_json",
    "summarize_run_log",
    "validate_stats_doc",
    "write_bench_file",
]
