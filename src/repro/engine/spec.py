"""Canonical run specifications and content-hash keying.

A :class:`RunSpec` is a frozen, hashable description of exactly one
simulation: which workload (and with which builder kwargs), at what
scale, under which :class:`~repro.uarch.config.CoreConfig`, with which
sampling techniques, periods, and seeds attached. Two specs that
describe the same simulation always produce the same canonical content
hash (:attr:`RunSpec.key`) regardless of kwarg ordering, dict insertion
order, or config object identity -- the key the engine memo, the
on-disk run store, and the telemetry log all share.

The hash also covers :data:`repro.version.MODEL_VERSION` (re-exported
here for compatibility), so bumping it after a behavioural change to
the timing model or samplers automatically invalidates every
previously stored run. The version constant and the registry of
semantics-bearing files live in :mod:`repro.version`, which the
tea-lint TL006 checker polices.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from functools import cached_property
from collections.abc import Iterator, Mapping
from typing import Any

from repro.uarch.config import CoreConfig
from repro.version import MODEL_VERSION

__all__ = [
    "DEFAULT_PERIOD",
    "DEFAULT_SCALE",
    "MODEL_VERSION",
    "RunSpec",
    "SPEC_SCHEMA",
    "TECHNIQUES",
    "canonical",
]

#: The five techniques of the headline comparison (Fig 5), paper order.
TECHNIQUES = ("IBS", "SPE", "RIS", "NCI-TEA", "TEA")

#: Default sampling period. The paper samples every 800,000 cycles
#: (4 kHz at 3.2 GHz) on runs of >= 10^11 cycles; our kernels run ~10^5
#: cycles, so the period is scaled by ~10^3 to keep the number of samples
#: statistically comparable.
DEFAULT_PERIOD = 293

#: Default workload scale for experiments.
DEFAULT_SCALE = 1.0

#: Spec-hash schema revision (bump on RunSpec field changes).
SPEC_SCHEMA = "tea-spec-v1"


def _sort_token(value: Any) -> str:
    """A total-order sort key over canonical forms."""
    return json.dumps(value, sort_keys=True)


def canonical(value: Any) -> Any:
    """Reduce *value* to a canonical JSON-able form.

    Dict items are sorted, sets are ordered, enums become qualified
    names, and dataclasses (e.g. :class:`CoreConfig` and its nested
    configs) become tagged field mappings, so structurally equal values
    always canonicalise identically.

    Raises:
        TypeError: For values that cannot be canonicalised (and thus
            must not appear in a :class:`RunSpec`).
    """
    if is_dataclass(value) and not isinstance(value, type):
        out: dict[str, Any] = {"__type__": type(value).__name__}
        for f in fields(value):
            out[f.name] = canonical(getattr(value, f.name))
        return out
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        items = [[canonical(k), canonical(v)] for k, v in value.items()]
        items.sort(key=lambda kv: _sort_token(kv[0]))
        return {"__dict__": items}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": sorted(
                (canonical(v) for v in value), key=_sort_token
            )
        }
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} value {value!r} "
        "for a RunSpec"
    )


@dataclass(frozen=True, eq=False)
class RunSpec:
    """One simulation run, fully specified and content-addressable.

    Build specs through :meth:`make` so workload kwargs are stored in
    canonical (key-sorted) order.

    Attributes:
        workload: Registered workload name (see :mod:`repro.workloads`).
        kwargs: Workload builder kwargs as a key-sorted item tuple.
        scale: Workload scale factor.
        period: Base sampling period in cycles.
        config: Core configuration override (``None`` = Table 2 default).
        techniques: Sampling techniques to attach, in order.
        extra_periods: Additional periods attached per technique
            (sampler keys become ``f"{technique}@{period}"``).
        seed: Base RNG seed for the primary samplers.
        extra_seed: Base RNG seed for the extra-period samplers.
        jitter: Randomise inter-sample gaps (see :class:`Sampler`).
    """

    workload: str
    kwargs: tuple[tuple[str, Any], ...] = ()
    scale: float = DEFAULT_SCALE
    period: int = DEFAULT_PERIOD
    config: CoreConfig | None = None
    techniques: tuple[str, ...] = TECHNIQUES
    extra_periods: tuple[int, ...] = ()
    seed: int = 12345
    extra_seed: int = 54321
    jitter: bool = True

    @classmethod
    def make(
        cls,
        workload: str,
        kwargs: Mapping[str, Any] | None = None,
        *,
        scale: float = DEFAULT_SCALE,
        period: int = DEFAULT_PERIOD,
        config: CoreConfig | None = None,
        techniques: tuple[str, ...] = TECHNIQUES,
        extra_periods: tuple[int, ...] = (),
        seed: int = 12345,
        extra_seed: int = 54321,
        jitter: bool = True,
    ) -> "RunSpec":
        """Build a spec with canonically ordered workload kwargs."""
        items = tuple(sorted((kwargs or {}).items(), key=lambda kv: kv[0]))
        return cls(
            workload=workload,
            kwargs=items,
            scale=float(scale),
            period=int(period),
            config=config,
            techniques=tuple(techniques),
            extra_periods=tuple(extra_periods),
            seed=seed,
            extra_seed=extra_seed,
            jitter=jitter,
        )

    @property
    def workload_kwargs(self) -> dict[str, Any]:
        """The workload builder kwargs as a dict."""
        return dict(self.kwargs)

    def sampler_plan(
        self,
    ) -> Iterator[tuple[str, str, int, int]]:
        """Yield (sampler key, technique, period, seed) in attach order.

        Mirrors the historical :class:`ExperimentRunner` seeding so specs
        reproduce bit-identical sampler streams: primary samplers get
        ``seed + technique_offset``, extra-period samplers get
        ``extra_seed + technique_offset``.
        """
        for offset, technique in enumerate(self.techniques):
            yield technique, technique, self.period, self.seed + offset
            for extra in self.extra_periods:
                yield (
                    f"{technique}@{extra}",
                    technique,
                    extra,
                    self.extra_seed + offset,
                )

    def canonical_payload(self) -> dict[str, Any]:
        """The canonical dict the content hash is computed over."""
        return {
            "schema": SPEC_SCHEMA,
            "model_version": MODEL_VERSION,
            "workload": self.workload,
            "kwargs": [
                [key, canonical(value)] for key, value in self.kwargs
            ],
            "scale": float(self.scale),
            "period": int(self.period),
            "config": canonical(self.config),
            "techniques": list(self.techniques),
            "extra_periods": list(self.extra_periods),
            "seed": self.seed,
            "extra_seed": self.extra_seed,
            "jitter": self.jitter,
        }

    @cached_property
    def key(self) -> str:
        """Canonical content hash (hex) identifying this run."""
        blob = json.dumps(
            self.canonical_payload(),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Human-readable short form for logs and error reports."""
        args = ",".join(f"{k}={v!r}" for k, v in self.kwargs)
        name = self.workload + (f":{args}" if args else "")
        return f"{name}@x{self.scale:g}/p{self.period}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)
