"""Canonical run specifications and content-hash keying.

A :class:`RunSpec` is a frozen, hashable description of exactly one
simulation: which workload (and with which builder kwargs), at what
scale, under which :class:`~repro.uarch.config.CoreConfig`, with which
sampling techniques, periods, and seeds attached. Two specs that
describe the same simulation always produce the same canonical content
hash (:attr:`RunSpec.key`) regardless of kwarg ordering, dict insertion
order, or config object identity -- the key the engine memo, the
on-disk run store, and the telemetry log all share.

The hash also covers :data:`repro.version.MODEL_VERSION` (re-exported
here for compatibility), so bumping it after a behavioural change to
the timing model or samplers automatically invalidates every
previously stored run. The version constant and the registry of
semantics-bearing files live in :mod:`repro.version`, which the
tea-lint TL006 checker polices.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from functools import cached_property
from collections.abc import Iterator, Mapping
from typing import Any

from repro.backends.base import BACKEND_NAMES
from repro.uarch.config import CoreConfig
from repro.version import MODEL_VERSION

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_PERIOD",
    "DEFAULT_SCALE",
    "MODEL_VERSION",
    "RunSpec",
    "SPEC_SCHEMA",
    "TECHNIQUES",
    "canonical",
]

#: The five techniques of the headline comparison (Fig 5), paper order.
TECHNIQUES = ("IBS", "SPE", "RIS", "NCI-TEA", "TEA")

#: Default sampling period. The paper samples every 800,000 cycles
#: (4 kHz at 3.2 GHz) on runs of >= 10^11 cycles; our kernels run ~10^5
#: cycles, so the period is scaled by ~10^3 to keep the number of samples
#: statistically comparable.
DEFAULT_PERIOD = 293

#: Default workload scale for experiments.
DEFAULT_SCALE = 1.0

#: Spec-hash schema revision (bump on RunSpec field changes).
#: v2: backend selection (detailed / functional / sampled) and the
#: sampled-mode window geometry joined the hashed payload.
SPEC_SCHEMA = "tea-spec-v2"


def _sort_token(value: Any) -> str:
    """A total-order sort key over canonical forms."""
    return json.dumps(value, sort_keys=True)


def canonical(value: Any) -> Any:
    """Reduce *value* to a canonical JSON-able form.

    Dict items are sorted, sets are ordered, enums become qualified
    names, and dataclasses (e.g. :class:`CoreConfig` and its nested
    configs) become tagged field mappings, so structurally equal values
    always canonicalise identically.

    Raises:
        TypeError: For values that cannot be canonicalised (and thus
            must not appear in a :class:`RunSpec`).
    """
    if is_dataclass(value) and not isinstance(value, type):
        out: dict[str, Any] = {"__type__": type(value).__name__}
        for f in fields(value):
            out[f.name] = canonical(getattr(value, f.name))
        return out
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        items = [[canonical(k), canonical(v)] for k, v in value.items()]
        items.sort(key=lambda kv: _sort_token(kv[0]))
        return {"__dict__": items}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": sorted(
                (canonical(v) for v in value), key=_sort_token
            )
        }
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} value {value!r} "
        "for a RunSpec"
    )


def validate_workload_kwargs(
    workload: str, kwargs: Mapping[str, Any]
) -> None:
    """Reject workload kwargs the registered builder cannot accept.

    Looks up *workload* in the builder registry and checks every key
    against the builder's signature, so a typo'd or misplaced engine
    option (``backend=``, ``perod=``, ...) fails at spec construction
    with a clear message instead of surfacing as a ``TypeError`` deep
    inside a worker -- or worse, silently keying a phantom store
    entry. Unknown workload names are left for :func:`repro.workloads
    .build` to report, and builders taking ``**kwargs`` accept
    anything.

    Raises:
        ValueError: For a kwarg the builder does not accept, naming
            the keys it does.
    """
    if not kwargs:
        return
    import inspect

    from repro.workloads import BUILDERS

    builder = BUILDERS.get(workload)
    if builder is None:
        return  # unknown workload: build() raises the canonical error
    params = inspect.signature(builder).parameters
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    ):
        return
    accepted = sorted(
        name
        for name, p in params.items()
        if name != "scale"
        and p.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    )
    rejected = sorted(set(kwargs) - set(accepted))
    if rejected:
        raise ValueError(
            f"workload {workload!r} does not accept kwarg(s) "
            f"{', '.join(map(repr, rejected))}; accepted: "
            + (", ".join(accepted) if accepted else "(none)")
            + " -- engine options like backend/period belong on the "
            "spec, not in workload kwargs"
        )


@dataclass(frozen=True, eq=False)
class RunSpec:
    """One simulation run, fully specified and content-addressable.

    Build specs through :meth:`make` so workload kwargs are stored in
    canonical (key-sorted) order.

    Attributes:
        workload: Registered workload name (see :mod:`repro.workloads`).
        kwargs: Workload builder kwargs as a key-sorted item tuple.
        scale: Workload scale factor.
        period: Base sampling period in cycles.
        config: Core configuration override (``None`` = Table 2 default).
        techniques: Sampling techniques to attach, in order.
        extra_periods: Additional periods attached per technique
            (sampler keys become ``f"{technique}@{period}"``).
        seed: Base RNG seed for the primary samplers.
        extra_seed: Base RNG seed for the extra-period samplers.
        jitter: Randomise inter-sample gaps (see :class:`Sampler`).
        backend: Execution tier -- ``"detailed"`` (the cycle-level
            core), ``"functional"`` (atomic, architectural state
            only), or ``"sampled"`` (detailed windows over functional
            fast-forward).
        window: Sampled-mode window length in committed instructions
            (0 = the :class:`~repro.backends.sampled.WindowPlan`
            default; ignored by the other backends).
        stride: Sampled-mode fast-forward length between windows.
        warmup: Sampled-mode warm-up replay depth per window.
    """

    workload: str
    kwargs: tuple[tuple[str, Any], ...] = ()
    scale: float = DEFAULT_SCALE
    period: int = DEFAULT_PERIOD
    config: CoreConfig | None = None
    techniques: tuple[str, ...] = TECHNIQUES
    extra_periods: tuple[int, ...] = ()
    seed: int = 12345
    extra_seed: int = 54321
    jitter: bool = True
    backend: str = "detailed"
    window: int = 0
    stride: int = 0
    warmup: int = 0

    @classmethod
    def make(
        cls,
        workload: str,
        kwargs: Mapping[str, Any] | None = None,
        *,
        scale: float = DEFAULT_SCALE,
        period: int = DEFAULT_PERIOD,
        config: CoreConfig | None = None,
        techniques: tuple[str, ...] = TECHNIQUES,
        extra_periods: tuple[int, ...] = (),
        seed: int = 12345,
        extra_seed: int = 54321,
        jitter: bool = True,
        backend: str = "detailed",
        window: int = 0,
        stride: int = 0,
        warmup: int = 0,
    ) -> "RunSpec":
        """Build a spec with canonically ordered workload kwargs.

        Raises:
            ValueError: For an unknown *backend*, or workload kwargs
                the registered builder does not accept (a typo'd
                engine option -- e.g. ``backend=`` passed as a
                workload kwarg -- must fail here, loudly, instead of
                minting a phantom cache entry).
        """
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"choose from {', '.join(BACKEND_NAMES)}"
            )
        validate_workload_kwargs(workload, kwargs or {})
        items = tuple(sorted((kwargs or {}).items(), key=lambda kv: kv[0]))
        return cls(
            workload=workload,
            kwargs=items,
            scale=float(scale),
            period=int(period),
            config=config,
            techniques=tuple(techniques),
            extra_periods=tuple(extra_periods),
            seed=seed,
            extra_seed=extra_seed,
            jitter=jitter,
            backend=backend,
            window=int(window),
            stride=int(stride),
            warmup=int(warmup),
        )

    @property
    def workload_kwargs(self) -> dict[str, Any]:
        """The workload builder kwargs as a dict."""
        return dict(self.kwargs)

    def sampler_plan(
        self,
    ) -> Iterator[tuple[str, str, int, int]]:
        """Yield (sampler key, technique, period, seed) in attach order.

        Mirrors the historical :class:`ExperimentRunner` seeding so specs
        reproduce bit-identical sampler streams: primary samplers get
        ``seed + technique_offset``, extra-period samplers get
        ``extra_seed + technique_offset``.
        """
        for offset, technique in enumerate(self.techniques):
            yield technique, technique, self.period, self.seed + offset
            for extra in self.extra_periods:
                yield (
                    f"{technique}@{extra}",
                    technique,
                    extra,
                    self.extra_seed + offset,
                )

    def canonical_payload(self) -> dict[str, Any]:
        """The canonical dict the content hash is computed over."""
        return {
            "schema": SPEC_SCHEMA,
            "model_version": MODEL_VERSION,
            "workload": self.workload,
            "kwargs": [
                [key, canonical(value)] for key, value in self.kwargs
            ],
            "scale": float(self.scale),
            "period": int(self.period),
            "config": canonical(self.config),
            "techniques": list(self.techniques),
            "extra_periods": list(self.extra_periods),
            "seed": self.seed,
            "extra_seed": self.extra_seed,
            "jitter": self.jitter,
            "backend": self.backend,
            "window": int(self.window),
            "stride": int(self.stride),
            "warmup": int(self.warmup),
        }

    @cached_property
    def key(self) -> str:
        """Canonical content hash (hex) identifying this run."""
        blob = json.dumps(
            self.canonical_payload(),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def window_plan(self):
        """The sampled-mode :class:`WindowPlan` this spec describes.

        ``window == 0`` means the plan default geometry; returns
        ``None`` for the non-sampled backends.
        """
        if self.backend != "sampled":
            return None
        from repro.backends.sampled import WindowPlan

        if self.window <= 0:
            return WindowPlan()
        return WindowPlan(
            window=self.window, stride=self.stride, warmup=self.warmup
        )

    def label(self) -> str:
        """Human-readable short form for logs and error reports."""
        args = ",".join(f"{k}={v!r}" for k, v in self.kwargs)
        name = self.workload + (f":{args}" if args else "")
        tier = "" if self.backend == "detailed" else f"/{self.backend}"
        return f"{name}@x{self.scale:g}/p{self.period}{tier}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)
