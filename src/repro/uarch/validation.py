"""Invariant validation for configurations and simulation results.

Two audiences: the test suite (every invariant here is also asserted in
anger there) and downstream users extending the model -- after changing
the core, run :func:`validate_result` over a few workloads and it will
catch broken attribution long before a benchmark looks subtly wrong.
"""

from __future__ import annotations

from repro.core.states import CommitState
from repro.uarch.config import CoreConfig
from repro.uarch.core import CoreResult


class ValidationError(AssertionError):
    """Raised when an invariant does not hold."""


def validate_config(config: CoreConfig) -> None:
    """Check structural sanity of a core configuration.

    Raises:
        ValidationError: Describing the first violated constraint.
    """
    positive_fields = (
        "fetch_width",
        "fetch_buffer_entries",
        "decode_width",
        "frontend_depth",
        "rob_entries",
        "commit_width",
        "int_queue_entries",
        "int_issue_width",
        "mem_queue_entries",
        "mem_issue_width",
        "fp_queue_entries",
        "fp_issue_width",
        "load_queue_entries",
        "store_queue_entries",
    )
    for field in positive_fields:
        value = getattr(config, field)
        if value <= 0:
            raise ValidationError(f"{field} must be positive, got {value}")
    if config.commit_width > config.rob_entries:
        raise ValidationError(
            "commit_width cannot exceed rob_entries "
            f"({config.commit_width} > {config.rob_entries})"
        )
    if config.decode_width > config.fetch_buffer_entries:
        raise ValidationError(
            "decode_width cannot exceed fetch_buffer_entries"
        )
    mem = config.memory
    for field in ("l1i_size", "l1d_size", "llc_size", "line_bytes",
                  "page_bytes"):
        if getattr(mem, field) <= 0:
            raise ValidationError(f"memory.{field} must be positive")
    if mem.line_bytes & (mem.line_bytes - 1):
        raise ValidationError("memory.line_bytes must be a power of two")
    for missing_class, latency in config.latencies.items():
        if latency <= 0:
            raise ValidationError(
                f"latency for {missing_class.name} must be positive"
            )


def validate_result(result: CoreResult, tolerance: float = 1e-6) -> None:
    """Check the time-proportionality invariants of a finished run.

    * every simulated cycle is attributed exactly once in the golden
      profile;
    * per-state cycle counts partition the cycle count;
    * per-instruction execution counts sum to the committed total;
    * event counts never exceed execution counts;
    * every attached sampler's captured weight is non-negative and the
      capture keys lie within the program.

    Raises:
        ValidationError: Describing the first violated invariant.
    """
    golden_total = sum(result.golden_raw.values())
    if abs(golden_total - result.cycles) > tolerance * max(
        result.cycles, 1
    ):
        raise ValidationError(
            f"golden profile covers {golden_total} of "
            f"{result.cycles} cycles"
        )
    state_total = sum(result.state_cycles.values())
    if state_total != result.cycles:
        raise ValidationError(
            f"state cycles sum to {state_total}, expected "
            f"{result.cycles}"
        )
    for state in CommitState:
        if result.state_cycles.get(state, 0) < 0:
            raise ValidationError(f"negative cycles for {state.name}")
    exec_total = sum(result.exec_counts.values())
    if exec_total != result.committed:
        raise ValidationError(
            f"exec counts sum to {exec_total}, expected "
            f"{result.committed}"
        )
    n_insts = len(result.program)
    for (index, event), count in result.event_counts.items():
        if not 0 <= index < n_insts:
            raise ValidationError(f"event count for bad index {index}")
        if count > result.exec_counts.get(index, 0):
            raise ValidationError(
                f"instruction {index}: event {event} count {count} "
                f"exceeds {result.exec_counts.get(index, 0)} executions"
            )
    for (index, _), cycles in result.golden_raw.items():
        if not 0 <= index < n_insts:
            raise ValidationError(f"golden entry for bad index {index}")
        if cycles < 0:
            raise ValidationError(f"negative golden cycles at {index}")
    for sampler in result.samplers:
        for (index, _), weight in sampler.raw.items():
            if not 0 <= index < n_insts:
                raise ValidationError(
                    f"{sampler.name}: capture for bad index {index}"
                )
            if weight < 0:
                raise ValidationError(
                    f"{sampler.name}: negative capture weight"
                )
