"""Core configuration: the paper's baseline BOOM parameters (Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.predictor import BranchPredictorConfig
from repro.isa.opcodes import OpClass
from repro.memory.hierarchy import MemoryConfig


@dataclass
class CoreConfig:
    """Parameters of the simulated out-of-order core.

    Defaults follow Table 2 of the paper: a 4-way superscalar BOOM at
    3.2 GHz with an 8-wide front end, 192-entry ROB, and a 64-entry
    load/store queue.
    """

    # Front end.
    fetch_width: int = 8
    fetch_buffer_entries: int = 48
    decode_width: int = 4
    frontend_depth: int = 4  # cycles from fetch to earliest dispatch
    btb_miss_penalty: int = 2
    redirect_penalty: int = 3  # flush/mispredict fetch-redirect bubble

    # Back end.
    rob_entries: int = 192
    commit_width: int = 4
    int_queue_entries: int = 80
    int_issue_width: int = 4
    mem_queue_entries: int = 48
    mem_issue_width: int = 2
    fp_queue_entries: int = 48
    fp_issue_width: int = 2

    # Load/store unit. Table 2: 64-entry load/store queue; we split it
    # evenly between loads and stores.
    load_queue_entries: int = 32
    store_queue_entries: int = 32

    # Execution latencies per operation class.
    latencies: dict[OpClass, int] = field(
        default_factory=lambda: {
            OpClass.NOP: 1,
            OpClass.INT_ALU: 1,
            OpClass.INT_MUL: 3,
            OpClass.INT_DIV: 16,
            OpClass.FP_ADD: 4,
            OpClass.FP_MUL: 4,
            OpClass.FP_DIV: 16,
            OpClass.FP_SQRT: 24,
            OpClass.STORE: 1,
            OpClass.PREFETCH: 1,
            OpClass.BRANCH: 1,
            OpClass.JUMP: 1,
            OpClass.SERIAL: 1,
            OpClass.HALT: 1,
        }
    )
    #: Unpipelined operation classes (one in flight per unit).
    unpipelined: frozenset[OpClass] = frozenset(
        {OpClass.INT_DIV, OpClass.FP_DIV, OpClass.FP_SQRT}
    )

    # Substrates.
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    branch: BranchPredictorConfig = field(
        default_factory=BranchPredictorConfig
    )

    # Paper-facing metadata (used by the overhead models).
    clock_ghz: float = 3.2
    psv_bits: int = 9

    def queue_of(self, op_class: OpClass) -> str:
        """Issue queue ("int" / "mem" / "fp") for an operation class."""
        if op_class in (OpClass.LOAD, OpClass.STORE, OpClass.PREFETCH):
            return "mem"
        if op_class in (
            OpClass.FP_ADD,
            OpClass.FP_MUL,
            OpClass.FP_DIV,
            OpClass.FP_SQRT,
        ):
            return "fp"
        return "int"

    @property
    def queue_capacity(self) -> dict[str, int]:
        """Issue-queue capacities by queue name."""
        return {
            "int": self.int_queue_entries,
            "mem": self.mem_queue_entries,
            "fp": self.fp_queue_entries,
        }

    @property
    def issue_width(self) -> dict[str, int]:
        """Issue widths by queue name."""
        return {
            "int": self.int_issue_width,
            "mem": self.mem_issue_width,
            "fp": self.fp_issue_width,
        }
