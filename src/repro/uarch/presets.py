"""Core-configuration presets modelled on the SonicBOOM family.

The paper evaluates on one BOOM configuration (Table 2 = LargeBoom-
class). These presets let experiments check that TEA's accuracy is a
property of its *attribution policy*, not of one pipeline shape: the
same techniques can be compared across small/medium/large/mega cores
(``benchmarks/bench_robustness.py`` does exactly that).

The memory hierarchy is held at the Table 2 baseline across presets so
accuracy differences isolate the core's width and window.
"""

from __future__ import annotations

from repro.uarch.config import CoreConfig


def small_boom() -> CoreConfig:
    """A 2-wide small core (SmallBoom-class)."""
    config = CoreConfig()
    config.fetch_width = 4
    config.fetch_buffer_entries = 16
    config.decode_width = 2
    config.commit_width = 2
    config.rob_entries = 64
    config.int_queue_entries = 24
    config.int_issue_width = 2
    config.mem_queue_entries = 12
    config.mem_issue_width = 1
    config.fp_queue_entries = 12
    config.fp_issue_width = 1
    config.load_queue_entries = 12
    config.store_queue_entries = 12
    return config


def medium_boom() -> CoreConfig:
    """A 3-wide medium core (MediumBoom-class)."""
    config = CoreConfig()
    config.fetch_width = 4
    config.fetch_buffer_entries = 32
    config.decode_width = 3
    config.commit_width = 3
    config.rob_entries = 128
    config.int_queue_entries = 48
    config.int_issue_width = 3
    config.mem_queue_entries = 32
    config.mem_issue_width = 2
    config.fp_queue_entries = 32
    config.fp_issue_width = 2
    config.load_queue_entries = 24
    config.store_queue_entries = 24
    return config


def large_boom() -> CoreConfig:
    """The paper's 4-wide baseline (Table 2)."""
    return CoreConfig()


def mega_boom() -> CoreConfig:
    """A 5-wide large-window core (MegaBoom-class)."""
    config = CoreConfig()
    config.decode_width = 5
    config.commit_width = 5
    config.rob_entries = 384
    config.int_queue_entries = 128
    config.int_issue_width = 5
    config.mem_queue_entries = 72
    config.mem_issue_width = 3
    config.fp_queue_entries = 72
    config.fp_issue_width = 3
    config.load_queue_entries = 48
    config.store_queue_entries = 48
    return config


#: Preset name -> builder.
PRESETS = {
    "small": small_boom,
    "medium": medium_boom,
    "large": large_boom,
    "mega": mega_boom,
}


def preset(name: str) -> CoreConfig:
    """Build a preset by name.

    Raises:
        KeyError: For an unknown preset name.
    """
    if name not in PRESETS:
        raise KeyError(
            f"unknown preset {name!r}; known: {', '.join(PRESETS)}"
        )
    return PRESETS[name]()
