"""The cycle-level out-of-order core timing model.

Trace-driven: the functional interpreter supplies the committed dynamic
instruction stream; this model adds speculation and timing on top. Each
simulated cycle proceeds commit -> classify/attribute -> sample -> issue ->
dispatch -> fetch -> store drain; when a cycle makes no progress the model
jumps directly to the next scheduled event, attributing the skipped cycles
to the (necessarily unchanged) commit state. This fast-forwarding is exact
with respect to golden attribution and sampling because the commit-stage
state cannot change without one of the scheduled events firing.

Golden-reference attribution (every cycle, every instruction -- the
paper's unimplementable baseline) is built into the core; statistical
samplers from :mod:`repro.core.samplers` attach on top and observe the
same cycles, mirroring the paper's out-of-band TraceDoctor methodology.
"""

from __future__ import annotations

import heapq
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.branch.predictor import BranchPredictor
from repro.core.events import Event
from repro.core.pics import PicsProfile
from repro.core.states import CommitState
from repro.isa.instructions import INST_BYTES, NO_REG, DynInst
from repro.isa.interpreter import ArchState, Interpreter
from repro.isa.opcodes import OpClass, Opcode, op_class
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.uarch.config import CoreConfig
from repro.uarch.uop import Uop

# Event-heap record kinds.
_EV_COMPLETE = 0
_EV_SQ_FREE = 1

# PSV bit masks used inline for speed.
_BIT_DR_L1 = 1 << Event.DR_L1
_BIT_DR_TLB = 1 << Event.DR_TLB
_BIT_DR_SQ = 1 << Event.DR_SQ
_BIT_FL_MB = 1 << Event.FL_MB
_BIT_FL_EX = 1 << Event.FL_EX
_BIT_FL_MO = 1 << Event.FL_MO
_BIT_ST_L1 = 1 << Event.ST_L1
_BIT_ST_TLB = 1 << Event.ST_TLB
_BIT_ST_LLC = 1 << Event.ST_LLC


class SimulationError(RuntimeError):
    """Raised when the timing model deadlocks or diverges."""


@dataclass
class FlushStats:
    """Pipeline-flush counts by cause."""

    mispredicts: int = 0
    serial: int = 0
    ordering: int = 0

    @property
    def total(self) -> int:
        """All flushes."""
        return self.mispredicts + self.serial + self.ordering


@dataclass
class CoreResult:
    """Everything a completed simulation produced."""

    program: Program
    cycles: int
    committed: int
    golden_raw: dict[tuple[int, int], float]
    event_counts: dict[tuple[int, int], int]
    exec_counts: dict[int, int]
    stall_histogram: Counter
    evented_execs: int
    combined_execs: int
    flushes: FlushStats
    hierarchy: MemoryHierarchy
    predictor: BranchPredictor
    samplers: list = field(default_factory=list)
    state_cycles: dict[CommitState, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    def golden_profile(self) -> PicsProfile:
        """Golden-reference PICS at instruction granularity."""
        return PicsProfile.from_raw("golden", self.golden_raw)

    def sampler_profile(self, name: str) -> PicsProfile:
        """The PICS profile of an attached sampler, by technique name.

        Raises:
            KeyError: If no attached sampler has that name.
        """
        for sampler in self.samplers:
            if sampler.name == name:
                return sampler.profile()
        raise KeyError(f"no sampler named {name!r}")

    def combined_event_fraction(self) -> float:
        """Fraction of evented dynamic executions with combined events."""
        if not self.evented_execs:
            return 0.0
        return self.combined_execs / self.evented_execs

    def cpi_stack(self) -> dict[CommitState, float]:
        """Application-level cycle stack: share of cycles per commit
        state (the coarse, per-instruction-blind view of classic
        CPI-stack PMU architectures -- paper Section 7)."""
        if not self.cycles:
            return {state: 0.0 for state in CommitState}
        return {
            state: count / self.cycles
            for state, count in self.state_cycles.items()
        }


class Core:
    """One simulated core executing one program.

    Args:
        program: The program to run.
        config: Core configuration (Table 2 defaults).
        samplers: Statistical samplers to attach (observe the run).
        arch_state: Pre-initialised architectural state for the functional
            interpreter (workloads use this for array setup).
        max_insts: Functional-execution divergence bound.
        fast_forward: Jump over no-progress cycles in bulk (default).
            Disabling it steps every cycle individually -- much slower
            but byte-identical in results; the property tests verify
            that equivalence.
    """

    def __init__(
        self,
        program: Program,
        config: CoreConfig | None = None,
        samplers: Iterable = (),
        arch_state: ArchState | None = None,
        max_insts: int = 50_000_000,
        fast_forward: bool = True,
        cycle_trace=None,
        hierarchy: MemoryHierarchy | None = None,
    ) -> None:
        self.program = program
        self.fast_forward = fast_forward
        #: Optional TraceDoctor-style sink (repro.trace.CycleTrace).
        self.cycle_trace = cycle_trace
        self.config = config or CoreConfig()
        self.samplers = list(samplers)
        # An injected hierarchy lets multicore systems share the LLC
        # and DRAM channel between per-core hierarchies.
        self.hierarchy = hierarchy or MemoryHierarchy(self.config.memory)
        self.predictor = BranchPredictor(self.config.branch)
        self._queue_by_op = {
            op: self.config.queue_of(op_class(op)) for op in Opcode
        }
        self._interp = Interpreter(program, arch_state, max_insts)
        self._source: Iterator[DynInst] = self._interp.run()
        self._source_done = False
        self._replay: deque[DynInst] = deque()

        # Pipeline structures.
        self.cycle = 0
        self.rob: deque[Uop] = deque()
        self.fetch_buffer: deque[Uop] = deque()
        self._events: list[tuple[int, int, int, Uop]] = []
        self._ready: dict[str, list[tuple[int, int, Uop]]] = {
            "int": [],
            "mem": [],
            "fp": [],
        }
        self._iq_occ = {"int": 0, "mem": 0, "fp": 0}
        self._lq_occ = 0
        self._sq_occ = 0
        self._last_writer: dict[int, Uop] = {}
        self._store_addr_map: dict[int, list[Uop]] = {}
        self._executed_loads: dict[int, list[Uop]] = {}
        self._drain_queue: deque[Uop] = deque()
        self._drain_port_free = 0
        self._unit_free = {
            OpClass.INT_DIV: 0,
            OpClass.FP_DIV: 0,
            OpClass.FP_SQRT: 0,
        }

        # Fetch state.
        self._fetch_stall_until = 0
        self._current_fetch_line = -1
        self._waiting_branch: Uop | None = None
        self._pending_fetch_psv = 0
        self._mo_seqs: set[int] = set()

        # Commit-state plumbing (visible to samplers).
        self.commit_state: CommitState = CommitState.DRAINED
        self.committing_now: list[Uop] = []
        self.rob_head: Uop | None = None
        self.flush_blame: tuple[int, int] = (-1, 0)
        self._empty_is_flush = False
        self._last_committed: tuple[int, int] | None = None

        # Golden attribution and statistics.
        self.golden_raw: dict[tuple[int, int], float] = {}
        self._pending_drain = 0.0
        self._drain_waiters: list[tuple] = []
        self._dispatch_tag_waiters: list[tuple] = []
        self._fetch_tag_waiters: list[tuple] = []
        self.event_counts: dict[tuple[int, int], int] = {}
        self.exec_counts: dict[int, int] = {}
        # Application-level cycle stack: cycles per commit state (the
        # coarse CPI-stack view of Eyerman et al. that the paper's
        # related work discusses).
        self.state_cycles: dict[CommitState, int] = {
            state: 0 for state in CommitState
        }
        self.stall_histogram: Counter = Counter()
        self.evented_execs = 0
        self.combined_execs = 0
        self.flushes = FlushStats()
        self.committed_total = 0

    # ==================================================================
    # Dynamic-instruction stream with replay (for flush re-fetch).
    # ==================================================================
    def _peek_dyn(self) -> DynInst | None:
        if self._replay:
            return self._replay[0]
        if self._source_done:
            return None
        try:
            dyn = next(self._source)
        except StopIteration:
            self._source_done = True
            return None
        self._replay.append(dyn)
        return dyn

    def _consume_dyn(self) -> DynInst:
        return self._replay.popleft()

    def _stream_empty(self) -> bool:
        return not self._replay and (
            self._source_done or self._peek_dyn() is None
        )

    # ==================================================================
    # Sampler plumbing.
    # ==================================================================
    def add_drain_waiter(self, sampler, weight: float) -> None:
        """Defer a sample to the next-committing instruction."""
        self._drain_waiters.append((sampler, weight))

    def add_dispatch_tag(self, sampler, weight: float) -> None:
        """Tag the next µop to dispatch (IBS/SPE-style)."""
        self._dispatch_tag_waiters.append((sampler, weight))

    def add_fetch_tag(self, sampler, weight: float) -> None:
        """Tag the next µop to be fetched (RIS-style)."""
        self._fetch_tag_waiters.append((sampler, weight))

    # ==================================================================
    # Main loop.
    # ==================================================================
    def start(self) -> None:
        """Initialise attached samplers (once, before stepping)."""
        for sampler in self.samplers:
            sampler.start(self)

    def active(self) -> bool:
        """True while the program has not finished executing."""
        return bool(
            self.rob or self.fetch_buffer or not self._stream_empty()
        )

    def step(self, horizon: int | None = None) -> None:
        """Simulate one cycle (plus any exact fast-forward).

        Args:
            horizon: Optional cap on fast-forwarding (absolute cycle) --
                multicore systems use it to bound clock skew between
                lock-stepped cores sharing an LLC.
        """
        self.cycle += 1
        cycle = self.cycle

        progressed = self._process_events()
        committed = self._commit()
        state = self._classify(committed)
        self.commit_state = state
        self.committing_now = committed
        self._attribute(state, 1, committed)
        for sampler in self.samplers:
            while sampler.next_due <= cycle:
                sampler.sample(self)
                sampler.advance()

        progressed |= bool(committed)
        progressed |= self._issue()
        progressed |= self._dispatch()
        progressed |= self._fetch()
        progressed |= self._start_drain()

        if not progressed and self.fast_forward:
            self._fast_forward(state, horizon)

    def run(self, max_cycles: int = 500_000_000) -> CoreResult:
        """Simulate to completion and return the results.

        Raises:
            SimulationError: On deadlock or when *max_cycles* is exceeded.
        """
        self.start()
        while self.active():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded {max_cycles} cycles"
                )
            self.step()
        self._finish()
        return self.result()

    def finish(self) -> None:
        """Public wrapper for end-of-run sampler resolution."""
        self._finish()

    def result(self) -> CoreResult:
        """Package the current statistics into a :class:`CoreResult`."""
        return CoreResult(
            program=self.program,
            cycles=self.cycle,
            committed=self.committed_total,
            golden_raw=self.golden_raw,
            event_counts=self.event_counts,
            exec_counts=self.exec_counts,
            stall_histogram=self.stall_histogram,
            evented_execs=self.evented_execs,
            combined_execs=self.combined_execs,
            flushes=self.flushes,
            hierarchy=self.hierarchy,
            predictor=self.predictor,
            samplers=self.samplers,
            state_cycles=dict(self.state_cycles),
        )

    def _finish(self) -> None:
        """Resolve leftover deferred samples and notify samplers."""
        if self._drain_waiters and self._last_committed is not None:
            index, psv = self._last_committed
            for sampler, weight in self._drain_waiters:
                sampler.capture(index, psv, weight, cycle=self.cycle)
        self._drain_waiters.clear()
        for sampler, _weight in self._dispatch_tag_waiters:
            sampler.drop()
        for sampler, _weight in self._fetch_tag_waiters:
            sampler.drop()
        self._dispatch_tag_waiters.clear()
        self._fetch_tag_waiters.clear()
        for sampler in self.samplers:
            sampler.finish(self)

    def _fast_forward(
        self, state: CommitState, cap: int | None = None
    ) -> None:
        """Jump to the next event, attributing skipped idle cycles."""
        cycle = self.cycle
        candidates: list[int] = []
        if self._events:
            candidates.append(self._events[0][0])
        if self.fetch_buffer:
            candidates.append(
                self.fetch_buffer[0].fetch_cycle + self.config.frontend_depth
            )
        if (
            self._waiting_branch is None
            and not self._stream_empty()
            and len(self.fetch_buffer) < self.config.fetch_buffer_entries
        ):
            candidates.append(self._fetch_stall_until)
        if self._drain_queue:
            candidates.append(self._drain_port_free)
        for queue in self._ready.values():
            if queue:
                candidates.append(queue[0][0])
        for free_time in self._unit_free.values():
            if free_time > cycle:
                candidates.append(free_time)
        future = [c for c in candidates if c > cycle]
        if not future:
            raise SimulationError(
                f"{self.program.name}: deadlock at cycle {cycle} "
                f"(rob={len(self.rob)}, fb={len(self.fetch_buffer)}, "
                f"state={state.name})"
            )
        target = min(future)
        if cap is not None:
            target = min(target, max(cap, cycle + 1))
        skip = target - cycle - 1
        if skip <= 0:
            return
        self._attribute(state, skip, [])
        horizon = cycle + skip
        for sampler in self.samplers:
            while sampler.next_due <= horizon:
                sampler.sample(self)
                sampler.advance()
        self.cycle = horizon

    # ==================================================================
    # Commit-state classification and golden attribution.
    # ==================================================================
    def _classify(self, committed: list[Uop]) -> CommitState:
        if committed:
            return CommitState.COMPUTE
        if self.rob:
            self.rob_head = self.rob[0]
            return CommitState.STALLED
        self.rob_head = None
        if self._empty_is_flush:
            return CommitState.FLUSHED
        return CommitState.DRAINED

    def _attribute(
        self, state: CommitState, n: int, committed: list[Uop]
    ) -> None:
        self.state_cycles[state] += n
        if (
            self.cycle_trace is not None
            and state != CommitState.COMPUTE
        ):
            head_seq = (
                self.rob[0].seq if state == CommitState.STALLED else -1
            )
            self.cycle_trace.on_cycles(state, n, head_seq)
        if state == CommitState.COMPUTE:
            share = 1.0 / len(committed)
            raw = self.golden_raw
            for uop in committed:
                key = (uop.index, uop.psv)
                raw[key] = raw.get(key, 0.0) + share
        elif state == CommitState.STALLED:
            self.rob[0].exposed_stall += n
        elif state == CommitState.DRAINED:
            self._pending_drain += n
        else:  # FLUSHED
            key = self.flush_blame
            self.golden_raw[key] = self.golden_raw.get(key, 0.0) + n

    # ==================================================================
    # Commit stage.
    # ==================================================================
    def _commit(self) -> list[Uop]:
        rob = self.rob
        cycle = self.cycle
        committed: list[Uop] = []
        budget = self.config.commit_width
        flushed = False
        while budget and rob:
            head = rob[0]
            if not head.complete or head.complete_time > cycle:
                break
            rob.popleft()
            head.committed = True
            committed.append(head)
            budget -= 1
            if head.is_load:
                self._lq_occ -= 1
                self._unregister_load(head)
            elif head.is_store:
                self._drain_queue.append(head)
            if head.causes_flush:
                # Serializing op: flush everything younger at commit.
                if head.op_class == OpClass.SERIAL:
                    self.flushes.serial += 1
                    self._squash_younger_than(head.seq)
                    self._fetch_stall_until = max(
                        self._fetch_stall_until,
                        cycle + self.config.redirect_penalty,
                    )
                flushed = True
                break
        if committed:
            raw = self.golden_raw
            last = committed[-1]
            # Drained cycles go to the next-committing instruction.
            first = committed[0]
            if self._pending_drain:
                key = (first.index, first.psv)
                raw[key] = raw.get(key, 0.0) + self._pending_drain
                self._pending_drain = 0.0
            if self._drain_waiters:
                for sampler, weight in self._drain_waiters:
                    sampler.capture(
                        first.index, first.psv, weight, cycle=cycle
                    )
                self._drain_waiters.clear()
            for uop in committed:
                key = (uop.index, uop.psv)
                if uop.exposed_stall:
                    raw[key] = raw.get(key, 0.0) + uop.exposed_stall
                if uop.pending_samples:
                    for sampler, weight in uop.pending_samples:
                        sampler.capture(
                            uop.index, uop.psv, weight, cycle=cycle
                        )
                    uop.pending_samples.clear()
                self._account_commit(uop)
            self.committed_total += len(committed)
            if self.cycle_trace is not None:
                self.cycle_trace.on_commit(
                    [(u.seq, u.index, u.psv) for u in committed]
                )
            self._last_committed = (last.index, last.psv)
            self._empty_is_flush = flushed or last.causes_flush
            if self._empty_is_flush:
                self.flush_blame = (last.index, last.psv)
        return committed

    def _account_commit(self, uop: Uop) -> None:
        index = uop.index
        self.exec_counts[index] = self.exec_counts.get(index, 0) + 1
        psv = uop.psv
        if psv:
            self.evented_execs += 1
            bits = psv
            n_bits = 0
            while bits:
                low = bits & -bits
                event_num = low.bit_length() - 1
                key = (index, event_num)
                self.event_counts[key] = self.event_counts.get(key, 0) + 1
                bits ^= low
                n_bits += 1
            if n_bits >= 2:
                self.combined_execs += 1
        elif uop.exposed_stall:
            self.stall_histogram[uop.exposed_stall] += 1

    # ==================================================================
    # Event processing (completions, SQ frees).
    # ==================================================================
    def _process_events(self) -> bool:
        events = self._events
        cycle = self.cycle
        progressed = False
        while events and events[0][0] <= cycle:
            time, _uid, kind, uop = heapq.heappop(events)
            progressed = True
            if kind == _EV_SQ_FREE:
                self._sq_occ -= 1
                self._unregister_store(uop)
                continue
            if uop.squashed:
                continue
            uop.complete = True
            uop.complete_time = time
            for dep in uop.dependents:
                if dep.squashed or not dep.dispatched:
                    continue
                dep.deps_remaining -= 1
                if dep.deps_remaining == 0:
                    heapq.heappush(
                        self._ready[dep.queue], (time, dep.uid, dep)
                    )
            uop.dependents.clear()
            if uop.mispredicted and self._waiting_branch is uop:
                self._waiting_branch = None
                self._fetch_stall_until = max(
                    self._fetch_stall_until,
                    time + self.config.redirect_penalty,
                )
                self._current_fetch_line = -1
        return progressed

    # ==================================================================
    # Issue / execute.
    # ==================================================================
    def _issue(self) -> bool:
        cycle = self.cycle
        issued_any = False
        for queue_name, width in self.config.issue_width.items():
            queue = self._ready[queue_name]
            budget = width
            deferred: list[tuple[int, int, Uop]] = []
            while budget and queue and queue[0][0] <= cycle:
                _rt, uid, uop = heapq.heappop(queue)
                if uop.squashed:
                    continue
                retry = self._try_execute(uop)
                if retry is not None:
                    deferred.append((retry, uid, uop))
                    continue
                budget -= 1
                issued_any = True
            for entry in deferred:
                heapq.heappush(queue, entry)
        return issued_any

    def _try_execute(self, uop: Uop) -> int | None:
        """Execute *uop* now; return a retry time if it cannot issue yet."""
        cycle = self.cycle
        op_class = uop.op_class
        cfg = self.config

        if op_class == OpClass.SERIAL and (
            not self.rob or self.rob[0] is not uop
        ):
            # Serializing ops execute non-speculatively at the ROB head.
            return cycle + 1

        if op_class in cfg.unpipelined:
            free = self._unit_free[op_class]
            if free > cycle:
                return free

        uop.issue_cycle = cycle
        uop.in_iq = False
        self._iq_occ[uop.queue] -= 1

        if uop.is_load:
            completion = self._execute_load(uop)
        elif uop.is_store:
            completion = self._execute_store(uop)
        elif op_class == OpClass.PREFETCH:
            self.hierarchy.prefetch(uop.eff_addr, cycle)
            completion = cycle + cfg.latencies[OpClass.PREFETCH]
        else:
            completion = cycle + cfg.latencies[op_class]
            if op_class in cfg.unpipelined:
                self._unit_free[op_class] = completion
        heapq.heappush(
            self._events, (completion, uop.uid, _EV_COMPLETE, uop)
        )
        return None

    def _execute_load(self, uop: Uop) -> int:
        cycle = self.cycle
        addr = uop.eff_addr
        word = addr >> 3
        # Store-to-load forwarding from the youngest older executed store.
        best: Uop | None = None
        for store in self._store_addr_map.get(word, ()):
            if store.seq < uop.seq and (
                best is None or store.seq > best.seq
            ):
                best = store
        self._executed_loads.setdefault(word, []).append(uop)
        if best is not None:
            uop.forwarded = True
            return cycle + 1
        access = self.hierarchy.access_load(addr, cycle)
        if access.l1_miss:
            uop.psv |= _BIT_ST_L1
        if access.llc_miss:
            uop.psv |= _BIT_ST_LLC
        if access.tlb_miss:
            uop.psv |= _BIT_ST_TLB
        return max(access.ready_time, cycle + 1)

    def _execute_store(self, uop: Uop) -> int:
        cycle = self.cycle
        addr = uop.eff_addr
        word = addr >> 3
        # Address generation includes translation (the STA µop).
        tlb = self.hierarchy.dtlb.lookup(addr)
        if not tlb.hit:
            uop.psv |= _BIT_ST_TLB
        self._store_addr_map.setdefault(word, []).append(uop)
        # Memory-ordering violation: a younger load already executed.
        violator: Uop | None = None
        for load in self._executed_loads.get(word, ()):
            if load.seq > uop.seq and not load.squashed:
                if violator is None or load.seq < violator.seq:
                    violator = load
        if violator is not None:
            self.flushes.ordering += 1
            self._mo_seqs.add(violator.seq)
            self._squash_younger_than(violator.seq - 1)
            self._fetch_stall_until = max(
                self._fetch_stall_until,
                cycle + self.config.redirect_penalty,
            )
        return cycle + tlb.latency + self.config.latencies[OpClass.STORE]

    # ==================================================================
    # Dispatch.
    # ==================================================================
    def _dispatch(self) -> bool:
        cycle = self.cycle
        cfg = self.config
        fb = self.fetch_buffer
        rob = self.rob
        iq_occ = self._iq_occ
        iq_cap = cfg.queue_capacity
        budget = cfg.decode_width
        progressed = False
        dispatched: list[Uop] = []
        while budget and fb:
            uop = fb[0]
            if cycle < uop.fetch_cycle + cfg.frontend_depth:
                break
            if len(rob) >= cfg.rob_entries:
                break
            if iq_occ[uop.queue] >= iq_cap[uop.queue]:
                break
            if uop.is_load and self._lq_occ >= cfg.load_queue_entries:
                break
            if uop.is_store:
                if self._sq_occ >= cfg.store_queue_entries:
                    # DR-SQ: the store stalls at dispatch because the LSQ
                    # is full of completed but not yet retired stores.
                    uop.psv |= _BIT_DR_SQ
                    break
                self._sq_occ += 1
            if uop.is_load:
                self._lq_occ += 1
            fb.popleft()
            uop.dispatched = True
            uop.dispatch_cycle = cycle
            rob.append(uop)
            iq_occ[uop.queue] += 1
            uop.in_iq = True
            self._rename(uop)
            dispatched.append(uop)
            budget -= 1
            progressed = True
        if dispatched and self._dispatch_tag_waiters:
            # Hardware taggers mark one dispatch slot of the tag cycle;
            # model the slot choice as uniform over this cycle's group.
            for sampler, weight in self._dispatch_tag_waiters:
                target = sampler.rng.choice(dispatched)
                target.pending_samples.append((sampler, weight))
            self._dispatch_tag_waiters.clear()
        return progressed

    def _rename(self, uop: Uop) -> None:
        static = uop.static
        deps = 0
        for reg in static.sources():
            if reg == 0:
                continue  # x0 is hard-wired to zero
            producer = self._last_writer.get(reg)
            if (
                producer is not None
                and not producer.complete
                and not producer.squashed
            ):
                producer.dependents.append(uop)
                deps += 1
        rd = static.rd
        if rd != NO_REG and rd != 0:
            uop.prev_writer = self._last_writer.get(rd)
            self._last_writer[rd] = uop
        uop.deps_remaining = deps
        if deps == 0:
            heapq.heappush(
                self._ready[uop.queue], (self.cycle + 1, uop.uid, uop)
            )

    # ==================================================================
    # Fetch.
    # ==================================================================
    def _fetch(self) -> bool:
        cycle = self.cycle
        cfg = self.config
        if self._waiting_branch is not None:
            return False
        if cycle < self._fetch_stall_until:
            return False
        fb = self.fetch_buffer
        line_bytes = cfg.memory.line_bytes
        budget = cfg.fetch_width
        progressed = False
        fetched: list[Uop] = []
        while budget and len(fb) < cfg.fetch_buffer_entries:
            dyn = self._peek_dyn()
            if dyn is None:
                break
            addr = dyn.static.index * INST_BYTES
            line = addr // line_bytes
            if line != self._current_fetch_line:
                access = self.hierarchy.access_inst(addr, cycle)
                self._current_fetch_line = line
                if access.ready_time > cycle:
                    self._fetch_stall_until = access.ready_time
                    psv_bits = 0
                    if access.icache_miss:
                        psv_bits |= _BIT_DR_L1
                    if access.itlb_miss:
                        psv_bits |= _BIT_DR_TLB
                    self._pending_fetch_psv |= psv_bits
                    break
            self._consume_dyn()
            uop = self._make_uop(dyn, cycle)
            fb.append(uop)
            fetched.append(uop)
            progressed = True
            budget -= 1
            if not self._handle_control(uop):
                break  # fetch redirect or mispredict stall
        if fetched and self._fetch_tag_waiters:
            for sampler, weight in self._fetch_tag_waiters:
                target = sampler.rng.choice(fetched)
                target.pending_samples.append((sampler, weight))
            self._fetch_tag_waiters.clear()
        return progressed

    def _make_uop(self, dyn: DynInst, cycle: int) -> Uop:
        uop = Uop(dyn, cycle, self._queue_by_op[dyn.static.op])
        if self._pending_fetch_psv:
            uop.psv |= self._pending_fetch_psv
            self._pending_fetch_psv = 0
        if dyn.seq in self._mo_seqs:
            self._mo_seqs.discard(dyn.seq)
            uop.psv |= _BIT_FL_MO
        if uop.op_class == OpClass.SERIAL:
            # fsflags/frflags-style ops always flush; statically known.
            uop.psv |= _BIT_FL_EX
            uop.causes_flush = True
        return uop

    def _handle_control(self, uop: Uop) -> bool:
        """Predict a fetched control µop; False ends this fetch packet."""
        op = uop.static.op
        op_class = uop.op_class
        cycle = self.cycle
        if op_class == OpClass.BRANCH:
            pc = uop.index
            predicted = self.predictor.predict_direction(pc)
            actual = uop.dyn.taken
            target_known = (
                self.predictor.predict_target(pc) is not None
            )
            self.predictor.update(pc, actual, uop.dyn.next_index)
            if predicted != actual:
                uop.mispredicted = True
                uop.causes_flush = True
                uop.psv |= _BIT_FL_MB
                self.flushes.mispredicts += 1
                self._waiting_branch = uop
                return False
            if actual:
                self._current_fetch_line = -1
                if not target_known:
                    self._fetch_stall_until = (
                        cycle + self.config.btb_miss_penalty
                    )
                return False
            return True
        if op == Opcode.JUMP or op == Opcode.CALL:
            pc = uop.index
            target_known = self.predictor.predict_target(pc) is not None
            self.predictor.update(pc, True, uop.dyn.next_index)
            if op == Opcode.CALL:
                self.predictor.push_return(uop.index + 1)
            self._current_fetch_line = -1
            if not target_known:
                self._fetch_stall_until = (
                    cycle + self.config.btb_miss_penalty
                )
            return False
        if op == Opcode.RET:
            predicted = self.predictor.predict_return()
            actual = uop.dyn.next_index
            if predicted != actual:
                uop.mispredicted = True
                uop.causes_flush = True
                uop.psv |= _BIT_FL_MB
                self.flushes.mispredicts += 1
                self._waiting_branch = uop
                return False
            self._current_fetch_line = -1
            return False
        return True

    # ==================================================================
    # Squash (flush) machinery.
    # ==================================================================
    def _squash_younger_than(self, boundary_seq: int) -> None:
        """Squash every µop with seq > boundary_seq and replay its trace."""
        squashed: list[Uop] = []
        rob = self.rob
        while rob and rob[-1].seq > boundary_seq:
            squashed.append(rob.pop())
        while self.fetch_buffer:
            # The fetch buffer only ever holds µops younger than the ROB.
            squashed.append(self.fetch_buffer.pop())
        squashed.sort(key=lambda u: -u.seq)
        for uop in squashed:
            uop.squashed = True
            if uop.in_iq:
                self._iq_occ[uop.queue] -= 1
                uop.in_iq = False
            if uop.dispatched:
                if uop.is_load:
                    self._lq_occ -= 1
                    self._unregister_load(uop)
                elif uop.is_store:
                    self._sq_occ -= 1
                    self._unregister_store(uop)
                rd = uop.static.rd
                if rd != NO_REG and rd != 0:
                    if self._last_writer.get(rd) is uop:
                        if uop.prev_writer is not None:
                            self._last_writer[rd] = uop.prev_writer
                        else:
                            del self._last_writer[rd]
            for sampler, _weight in uop.pending_samples:
                sampler.drop()
            uop.pending_samples.clear()
        # Replay the dynamic trace of the squashed µops, oldest first at
        # the front of the replay queue (squashed is youngest-first).
        self._replay.extendleft(uop.dyn for uop in squashed)
        if self._waiting_branch is not None and self._waiting_branch.squashed:
            self._waiting_branch = None
        self._current_fetch_line = -1
        self._pending_fetch_psv = 0

    def _unregister_load(self, uop: Uop) -> None:
        word = uop.eff_addr >> 3
        loads = self._executed_loads.get(word)
        if loads is not None:
            try:
                loads.remove(uop)
            except ValueError:
                pass
            if not loads:
                del self._executed_loads[word]

    def _unregister_store(self, uop: Uop) -> None:
        word = uop.eff_addr >> 3
        stores = self._store_addr_map.get(word)
        if stores is not None:
            try:
                stores.remove(uop)
            except ValueError:
                pass
            if not stores:
                del self._store_addr_map[word]

    # ==================================================================
    # Post-commit store draining.
    # ==================================================================
    def _start_drain(self) -> bool:
        cycle = self.cycle
        if not self._drain_queue or cycle < self._drain_port_free:
            return False
        store = self._drain_queue.popleft()
        access = self.hierarchy.access_store(
            store.eff_addr, cycle, translate=False
        )
        self._drain_port_free = cycle + 1
        heapq.heappush(
            self._events,
            (max(access.ready_time, cycle + 1), store.uid, _EV_SQ_FREE, store),
        )
        return True


def simulate(
    program: Program,
    config: CoreConfig | None = None,
    samplers: Iterable = (),
    arch_state: ArchState | None = None,
    max_cycles: int = 500_000_000,
    fast_forward: bool = True,
) -> CoreResult:
    """Convenience wrapper: build a :class:`Core` and run it."""
    core = Core(
        program, config, samplers, arch_state,
        fast_forward=fast_forward,
    )
    return core.run(max_cycles)
