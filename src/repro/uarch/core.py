"""The cycle-level out-of-order core timing model.

Trace-driven: the functional interpreter supplies the committed dynamic
instruction stream; this model adds speculation and timing on top. Each
simulated cycle proceeds commit -> classify/attribute -> sample -> issue ->
dispatch -> fetch -> store drain; when a cycle makes no progress the model
jumps directly to the next scheduled event, attributing the skipped cycles
to the (necessarily unchanged) commit state. This fast-forwarding is exact
with respect to golden attribution and sampling because the commit-stage
state cannot change without one of the scheduled events firing.

Golden-reference attribution (every cycle, every instruction -- the
paper's unimplementable baseline) is built into the core; statistical
samplers from :mod:`repro.core.samplers` attach on top and observe the
same cycles, mirroring the paper's out-of-band TraceDoctor methodology.

Hot-loop organisation (PR 2)
----------------------------
The per-cycle loop is the throughput bottleneck of every experiment, so
it is written for speed under CPython:

* Sampler polling is event-scheduled: sampler ``next_due`` cycles live
  on a small min-heap (:attr:`Core._sampler_heap`), so :meth:`step` does
  one integer compare per cycle instead of iterating every sampler, and
  :meth:`_fast_forward` drains the heap up to the skip horizon instead
  of replay-looping each sampler.
* Golden attribution accumulates into a flat per-instruction array for
  event-free (``psv == 0``) cycles plus a dict for evented signatures,
  folded into :attr:`Core.golden_raw` at :meth:`_finish`. Per-key float
  addition order is unchanged, so folded profiles are bit-identical to
  the dict-of-tuples path.
* Config scalars (which include per-call dict-building properties like
  ``issue_width``) and instance attributes used per cycle are hoisted
  into locals or precomputed in ``__init__``.

``reference_loop=True`` selects the frozen pre-optimisation loop
(linear sampler polling, direct dict accumulation). It exists for the
A/B harness (:mod:`repro.engine.benchmark`) and equivalence tests that
pin the optimised loop to bit-identical golden and sampler profiles.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush, heapreplace
from collections.abc import Iterable, Iterator

from time import perf_counter

from repro import obs
from repro.obs.stageprof import (
    EV_COMMIT,
    EV_DISPATCH,
    EV_DRAIN,
    EV_EVENTS,
    EV_FETCH,
    EV_IDLE,
    EV_ISSUE,
    EV_SAMPLE,
    StageProfiler,
)
from repro.branch.predictor import BranchPredictor
from repro.core.events import Event
from repro.core.pics import PicsProfile
from repro.core.states import CommitState
from repro.isa.instructions import INST_BYTES, NO_REG, DynInst
from repro.isa.interpreter import ArchState
from repro.isa.opcodes import Opcode, OpClass, op_class
from repro.isa.program import Program
from repro.isa.semantics import InstStream
from repro.memory.hierarchy import MemoryHierarchy
from repro.uarch.config import CoreConfig
from repro.uarch.uop import Uop

# Event-heap record kinds.
_EV_COMPLETE = 0
_EV_SQ_FREE = 1

# PSV bit masks used inline for speed.
_BIT_DR_L1 = 1 << Event.DR_L1
_BIT_DR_TLB = 1 << Event.DR_TLB
_BIT_DR_SQ = 1 << Event.DR_SQ
_BIT_FL_MB = 1 << Event.FL_MB
_BIT_FL_EX = 1 << Event.FL_EX
_BIT_FL_MO = 1 << Event.FL_MO
_BIT_ST_L1 = 1 << Event.ST_L1
_BIT_ST_TLB = 1 << Event.ST_TLB
_BIT_ST_LLC = 1 << Event.ST_LLC

# Commit states bound to module level (dodges enum attribute lookups in
# the per-cycle loop).
_COMPUTE = CommitState.COMPUTE
_STALLED = CommitState.STALLED
_DRAINED = CommitState.DRAINED
_FLUSHED = CommitState.FLUSHED

#: Shared empty commit group for no-commit cycles (never mutated).
_NO_UOPS: list = []


class SimulationError(RuntimeError):
    """Raised when the timing model deadlocks or diverges."""


@dataclass
class FlushStats:
    """Pipeline-flush counts by cause."""

    mispredicts: int = 0
    serial: int = 0
    ordering: int = 0

    @property
    def total(self) -> int:
        """All flushes."""
        return self.mispredicts + self.serial + self.ordering


@dataclass
class CoreResult:
    """Everything a completed simulation produced."""

    program: Program
    cycles: int
    committed: int
    golden_raw: dict[tuple[int, int], float]
    event_counts: dict[tuple[int, int], int]
    exec_counts: dict[int, int]
    stall_histogram: Counter
    evented_execs: int
    combined_execs: int
    flushes: FlushStats
    hierarchy: MemoryHierarchy
    predictor: BranchPredictor
    samplers: list = field(default_factory=list)
    state_cycles: dict[CommitState, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    def golden_profile(self) -> PicsProfile:
        """Golden-reference PICS at instruction granularity."""
        return PicsProfile.from_raw("golden", self.golden_raw)

    def sampler_profile(self, name: str) -> PicsProfile:
        """The PICS profile of an attached sampler, by technique name.

        Raises:
            KeyError: If no attached sampler has that name.
        """
        for sampler in self.samplers:
            if sampler.name == name:
                return sampler.profile()
        raise KeyError(f"no sampler named {name!r}")

    def combined_event_fraction(self) -> float:
        """Fraction of evented dynamic executions with combined events."""
        if not self.evented_execs:
            return 0.0
        return self.combined_execs / self.evented_execs

    def cpi_stack(self) -> dict[CommitState, float]:
        """Application-level cycle stack: share of cycles per commit
        state (the coarse, per-instruction-blind view of classic
        CPI-stack PMU architectures -- paper Section 7)."""
        if not self.cycles:
            return {state: 0.0 for state in CommitState}
        return {
            state: count / self.cycles
            for state, count in self.state_cycles.items()
        }


class Core:
    """One simulated core executing one program.

    Args:
        program: The program to run.
        config: Core configuration (Table 2 defaults).
        samplers: Statistical samplers to attach (observe the run).
        arch_state: Pre-initialised architectural state for the functional
            interpreter (workloads use this for array setup).
        max_insts: Functional-execution divergence bound.
        fast_forward: Jump over no-progress cycles in bulk (default).
            Disabling it steps every cycle individually -- much slower
            but byte-identical in results; the property tests verify
            that equivalence.
        reference_loop: Run the frozen pre-optimisation per-cycle loop
            (linear sampler polling, dict-of-tuples golden accumulation).
            Slower; used by the A/B harness and equivalence tests to pin
            the optimised hot loop to bit-identical results.
        stream: An existing :class:`InstStream` to consume (sampled
            windows share one stream across cores so architectural
            state and stream position transfer exactly). When given,
            ``arch_state``/``max_insts`` are ignored -- the stream
            already owns them.
        predictor: An injected branch predictor (pre-warmed at sampled
            window boundaries); a fresh one is built otherwise.
        commit_limit: Stop committing after exactly this many
            instructions (sampled measurement windows). The driving
            loop must stop stepping once ``committed_total`` reaches
            the limit and then call :meth:`detach_window`; ``run()``
            itself must not be used with a limit set.
    """

    def __init__(
        self,
        program: Program,
        config: CoreConfig | None = None,
        samplers: Iterable = (),
        arch_state: ArchState | None = None,
        max_insts: int = 50_000_000,
        fast_forward: bool = True,
        cycle_trace=None,
        hierarchy: MemoryHierarchy | None = None,
        reference_loop: bool = False,
        stream: InstStream | None = None,
        predictor: BranchPredictor | None = None,
        commit_limit: int | None = None,
    ) -> None:
        self.program = program
        self.fast_forward = fast_forward
        self.reference_loop = reference_loop
        #: Optional TraceDoctor-style sink (repro.trace.CycleTrace).
        self.cycle_trace = cycle_trace
        self.config = config or CoreConfig()
        self.samplers = list(samplers)
        # An injected hierarchy lets multicore systems share the LLC
        # and DRAM channel between per-core hierarchies; an injected
        # predictor carries warm state into sampled windows.
        self.hierarchy = hierarchy or MemoryHierarchy(self.config.memory)
        self.predictor = (
            predictor if predictor is not None
            else BranchPredictor(self.config.branch)
        )
        self._queue_by_op = {
            op: self.config.queue_of(op_class(op)) for op in Opcode
        }
        self._class_by_op = {op: op_class(op) for op in Opcode}
        # Static-instruction register operands, precomputed per program
        # index (StaticInst.sources() builds a fresh tuple per call --
        # far too hot for the rename stage).
        self._sources_by_index: list[tuple[int, ...]] = [
            inst.sources() for inst in program
        ]
        # Per-program-index fetch metadata: issue queue, op class, and
        # whether _handle_control has anything to do for the µop.
        self._queue_by_index: list[str] = [
            self._queue_by_op[inst.op] for inst in program
        ]
        self._class_by_index: list[OpClass] = [
            self._class_by_op[inst.op] for inst in program
        ]
        self._control_by_index: list[bool] = [
            self._class_by_op[inst.op] is OpClass.BRANCH
            or inst.op in (Opcode.JUMP, Opcode.CALL, Opcode.RET)
            for inst in program
        ]
        # The dynamic-instruction stream may be shared with other
        # backends (sampled windows): architectural state and stream
        # position live on the stream, not the core. ``source`` and
        # ``replay`` never rebind, so the hot-path aliases stay valid.
        self._stream = (
            stream if stream is not None
            else InstStream(program, arch_state, max_insts)
        )
        self._source: Iterator[DynInst] = self._stream.source
        self._replay: deque[DynInst] = self._stream.replay
        self._commit_limit = commit_limit

        # Pipeline structures.
        self.cycle = 0
        self.rob: deque[Uop] = deque()
        self.fetch_buffer: deque[Uop] = deque()
        self._events: list[tuple[int, int, int, Uop]] = []
        self._ready: dict[str, list[tuple[int, int, Uop]]] = {
            "int": [],
            "mem": [],
            "fp": [],
        }
        self._iq_occ = {"int": 0, "mem": 0, "fp": 0}
        self._lq_occ = 0
        self._sq_occ = 0
        self._last_writer: dict[int, Uop] = {}
        self._store_addr_map: dict[int, list[Uop]] = {}
        self._executed_loads: dict[int, list[Uop]] = {}
        self._drain_queue: deque[Uop] = deque()
        self._drain_port_free = 0
        self._unit_free = {
            OpClass.INT_DIV: 0,
            OpClass.FP_DIV: 0,
            OpClass.FP_SQRT: 0,
        }

        # Hoisted configuration. ``issue_width``/``queue_capacity`` are
        # dict-building properties -- never touch them per cycle.
        cfg = self.config
        self._commit_width = cfg.commit_width
        self._decode_width = cfg.decode_width
        self._rob_entries = cfg.rob_entries
        self._frontend_depth = cfg.frontend_depth
        self._fetch_width = cfg.fetch_width
        self._fetch_buffer_entries = cfg.fetch_buffer_entries
        self._lq_entries = cfg.load_queue_entries
        self._sq_entries = cfg.store_queue_entries
        self._redirect_penalty = cfg.redirect_penalty
        self._btb_miss_penalty = cfg.btb_miss_penalty
        self._latencies = cfg.latencies
        self._unpipelined = cfg.unpipelined
        self._line_bytes = cfg.memory.line_bytes
        self._iq_cap = cfg.queue_capacity
        #: (queue name, ready heap, issue width), in config order.
        self._issue_plan = [
            (name, self._ready[name], width)
            for name, width in cfg.issue_width.items()
        ]
        #: Just the heaps, for the per-cycle issue guard in step().
        self._issue_queues = tuple(q for _, q, _ in self._issue_plan)

        # Fetch state.
        self._fetch_stall_until = 0
        self._current_fetch_line = -1
        self._waiting_branch: Uop | None = None
        self._pending_fetch_psv = 0
        self._mo_seqs: set[int] = set()

        # Commit-state plumbing (visible to samplers).
        self.commit_state: CommitState = CommitState.DRAINED
        self.committing_now: list[Uop] = []
        self.rob_head: Uop | None = None
        self.flush_blame: tuple[int, int] = (-1, 0)
        self._empty_is_flush = False
        self._last_committed: tuple[int, int] | None = None
        self._last_committed_seq = -1

        # Golden attribution and statistics. The optimised loop splits
        # accumulation: event-free cycles go to the flat per-instruction
        # array, evented signatures to the dict; _finish() folds both
        # into golden_raw. The reference loop writes golden_raw directly.
        self.golden_raw: dict[tuple[int, int], float] = {}
        self._golden_base: list[float] = [0.0] * len(program)
        self._golden_ev: dict[tuple[int, int], float] = {}
        self._pending_drain = 0.0
        self._drain_waiters: list[tuple] = []
        self._dispatch_tag_waiters: list[tuple] = []
        self._fetch_tag_waiters: list[tuple] = []
        self.event_counts: dict[tuple[int, int], int] = {}
        self.exec_counts: dict[int, int] = {}
        # Application-level cycle stack: cycles per commit state (the
        # coarse CPI-stack view of Eyerman et al. that the paper's
        # related work discusses).
        self.state_cycles: dict[CommitState, int] = {
            state: 0 for state in CommitState
        }
        self.stall_histogram: Counter = Counter()
        # PSV value -> tuple of set event-bit numbers (see _commit).
        self._psv_bits_cache: dict[int, tuple[int, ...]] = {}
        self.evented_execs = 0
        self.combined_execs = 0
        self.flushes = FlushStats()
        self.committed_total = 0

        # Sampler due-cycle heap (rebuilt by start(); built here too so
        # manually-stepped cores sample without an explicit start()).
        self._sampler_heap: list[tuple[int, int, object]] = []
        self._build_sampler_heap()

    # ==================================================================
    # Dynamic-instruction stream with replay (for flush re-fetch).
    # The stream itself lives in repro.isa.semantics -- these wrappers
    # exist for the manual-stepping API; the fetch hot loop works on
    # the stream's replay/source/done directly.
    # ==================================================================
    def _peek_dyn(self) -> DynInst | None:
        return self._stream.peek()

    def _consume_dyn(self) -> DynInst:
        return self._stream.consume()

    def _stream_empty(self) -> bool:
        return self._stream.empty()

    # ==================================================================
    # Sampler plumbing.
    # ==================================================================
    def add_drain_waiter(self, sampler, weight: float) -> None:
        """Defer a sample to the next-committing instruction."""
        self._drain_waiters.append((sampler, weight))

    def add_dispatch_tag(self, sampler, weight: float) -> None:
        """Tag the next µop to dispatch (IBS/SPE-style)."""
        self._dispatch_tag_waiters.append((sampler, weight))

    def add_fetch_tag(self, sampler, weight: float) -> None:
        """Tag the next µop to be fetched (RIS-style)."""
        self._fetch_tag_waiters.append((sampler, weight))

    def _build_sampler_heap(self) -> None:
        """(Re)build the due-cycle heap from the attached samplers.

        The heap index breaks due-cycle ties by sampler attach order.
        Cross-sampler interleaving within one polled window does not
        change any per-sampler result: each sampler owns its RNG and raw
        accumulator, and the core state they observe is read-only to
        them -- the A/B equivalence tests pin this down.
        """
        heap = [
            (sampler.next_due, index, sampler)
            for index, sampler in enumerate(self.samplers)
        ]
        heapify(heap)
        self._sampler_heap = heap

    def _poll_samplers(self, horizon: int) -> None:
        """Fire every sampler whose due cycle is at or before *horizon*."""
        sheap = self._sampler_heap
        while sheap and sheap[0][0] <= horizon:
            _due, index, sampler = sheap[0]
            sampler.sample(self)
            sampler.advance()
            heapreplace(sheap, (sampler.next_due, index, sampler))

    # ==================================================================
    # Main loop.
    # ==================================================================
    def start(self, reset_samplers: bool = True) -> None:
        """Initialise attached samplers (once, before stepping).

        Args:
            reset_samplers: Reset sampler state (RNG, due cycle, raw
                accumulators). Sampled simulation passes False for
                every window after the first: the samplers continue
                the concatenated measured-cycle timeline, so only the
                due-cycle heap is rebuilt.
        """
        if reset_samplers:
            for sampler in self.samplers:
                sampler.start(self)
        self._build_sampler_heap()

    def active(self) -> bool:
        """True while the program has not finished executing."""
        return bool(
            self.rob or self.fetch_buffer or not self._stream_empty()
        )

    def step(self, horizon: int | None = None) -> None:
        """Simulate one cycle (plus any exact fast-forward).

        Args:
            horizon: Optional cap on fast-forwarding (absolute cycle) --
                multicore systems use it to bound clock skew between
                lock-stepped cores sharing an LLC.
        """
        if self.reference_loop:
            self._step_reference(horizon)
            return
        cycle = self.cycle + 1
        self.cycle = cycle

        events = self._events
        if events and events[0][0] <= cycle:
            progressed = self._process_events()
        else:
            progressed = False

        rob = self.rob
        committed = _NO_UOPS
        if rob:
            head = rob[0]
            if head.complete and head.complete_time <= cycle:
                committed = self._commit()

        # Classify (inlined _classify) and attribute (inlined
        # _attribute for n=1); exactly mirrors the reference loop.
        if committed:
            state = _COMPUTE
            progressed = True
        elif rob:
            self.rob_head = rob[0]
            state = _STALLED
        else:
            self.rob_head = None
            state = _FLUSHED if self._empty_is_flush else _DRAINED
        self.commit_state = state
        self.committing_now = committed

        self.state_cycles[state] += 1
        if state is _COMPUTE:
            share = 1.0 / len(committed)
            base = self._golden_base
            ev = self._golden_ev
            for uop in committed:
                psv = uop.psv
                if psv:
                    key = (uop.index, psv)
                    ev[key] = ev.get(key, 0.0) + share
                else:
                    base[uop.index] += share
        else:
            if self.cycle_trace is not None:
                self.cycle_trace.on_cycles(
                    state, 1, rob[0].seq if state is _STALLED else -1
                )
            if state is _STALLED:
                rob[0].exposed_stall += 1
            elif state is _DRAINED:
                self._pending_drain += 1
            else:  # FLUSHED
                index, psv = self.flush_blame
                if psv:
                    ev = self._golden_ev
                    key = (index, psv)
                    ev[key] = ev.get(key, 0.0) + 1
                else:
                    self._golden_base[index] += 1

        sheap = self._sampler_heap
        if sheap and sheap[0][0] <= cycle:
            self._poll_samplers(cycle)

        # Stage guards: each call is skipped when its first internal
        # check would bail anyway (the bodies re-check, so the guards
        # are pure call-avoidance).
        for queue in self._issue_queues:
            if queue and queue[0][0] <= cycle:
                progressed |= self._issue()
                break
        fb = self.fetch_buffer
        if fb and cycle >= fb[0].fetch_cycle + self._frontend_depth:
            progressed |= self._dispatch()
        if (
            self._waiting_branch is None
            and cycle >= self._fetch_stall_until
            and len(self.fetch_buffer) < self._fetch_buffer_entries
        ):
            progressed |= self._fetch()
        if self._drain_queue and cycle >= self._drain_port_free:
            progressed |= self._start_drain()

        if not progressed and self.fast_forward:
            self._fast_forward(state, horizon)

    def run(self, max_cycles: int = 500_000_000) -> CoreResult:
        """Simulate to completion and return the results.

        Raises:
            SimulationError: On deadlock or when *max_cycles* is exceeded.
        """
        self.start()
        if obs.enabled() and not self.reference_loop:
            # Observability opt-in: the instrumented loop performs the
            # exact same stage calls in the same order (bit-identical
            # results -- pinned by tests), plus per-stage wall timing.
            return self._run_profiled(max_cycles)
        step = self.step
        active = self.active
        while active():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded {max_cycles} cycles"
                )
            step()
        self._finish()
        return self.result()

    # tealint: disable=TL002 -- only dispatched from run() behind
    # obs.enabled(); guarding again here would double the check.
    def _run_profiled(self, max_cycles: int) -> CoreResult:
        """Simulate to completion under the instrumented step loop."""
        prof = StageProfiler(self.program.name)
        step = self._step_profiled
        active = self.active
        workload = self.program.name
        beat_every = obs.PROGRESS_EVERY_CYCLES
        next_beat = beat_every
        with obs.span(f"core.run:{workload}"):
            while active():
                if self.cycle >= max_cycles:
                    raise SimulationError(
                        f"{workload}: exceeded "
                        f"{max_cycles} cycles"
                    )
                step(prof)
                if self.cycle >= next_beat:
                    # Observe-only heartbeat: reads the two public
                    # counts, mutates nothing (bit-identity pinned).
                    next_beat = self.cycle + beat_every
                    obs.report_progress(
                        workload, "detailed",
                        self.cycle, self.committed_total,
                    )
            self._finish()
        prof.finish(self.cycle)
        self._report_obs()
        return self.result()

    def finish(self) -> None:
        """Public wrapper for end-of-run sampler resolution."""
        self._finish()

    def detach_window(self) -> None:
        """End a measurement window at the last committed instruction.

        Squashes every in-flight µop back onto the shared instruction
        stream -- restoring the stream position to the commit boundary
        exactly, since the trace-driven core commits in stream order --
        then resolves deferred samples the same way end-of-run does
        (drain waiters land on the last committed instruction, pending
        tags drop) and folds golden attribution. The core is finished
        afterwards; the stream lives on for the next executor.
        """
        self._squash_younger_than(self._last_committed_seq)
        self._finish()

    @property
    def stream(self) -> InstStream:
        """The (possibly shared) dynamic-instruction stream."""
        return self._stream

    def result(self) -> CoreResult:
        """Package the current statistics into a :class:`CoreResult`."""
        self._fold_golden()
        return CoreResult(
            program=self.program,
            cycles=self.cycle,
            committed=self.committed_total,
            golden_raw=self.golden_raw,
            event_counts=self.event_counts,
            exec_counts=self.exec_counts,
            stall_histogram=self.stall_histogram,
            evented_execs=self.evented_execs,
            combined_execs=self.combined_execs,
            flushes=self.flushes,
            hierarchy=self.hierarchy,
            predictor=self.predictor,
            samplers=self.samplers,
            state_cycles=dict(self.state_cycles),
        )

    def _fold_golden(self) -> None:
        """Fold the flat accumulators into :attr:`golden_raw`.

        A pure snapshot (assignments, not additions), so it is
        idempotent and safe to call at any point; per-key values carry
        the exact float-addition order of the accumulation sites. The
        reference loop accumulates into golden_raw directly, leaving
        both flat structures empty.
        """
        raw = self.golden_raw
        for key, value in self._golden_ev.items():
            raw[key] = value
        base = self._golden_base
        for index in range(len(base)):
            value = base[index]
            if value:
                raw[(index, 0)] = value

    def _finish(self) -> None:
        """Resolve leftover deferred samples and notify samplers."""
        if self._drain_waiters and self._last_committed is not None:
            index, psv = self._last_committed
            for sampler, weight in self._drain_waiters:
                sampler.capture(index, psv, weight, cycle=self.cycle)
        self._drain_waiters.clear()
        for sampler, _weight in self._dispatch_tag_waiters:
            sampler.drop()
        for sampler, _weight in self._fetch_tag_waiters:
            sampler.drop()
        self._dispatch_tag_waiters.clear()
        self._fetch_tag_waiters.clear()
        self._fold_golden()
        for sampler in self.samplers:
            sampler.finish(self)

    def _fast_forward(
        self, state: CommitState, cap: int | None = None
    ) -> None:
        """Jump to the next event, attributing skipped idle cycles."""
        cycle = self.cycle
        # Track the minimum future candidate directly (no list builds).
        target = -1
        events = self._events
        if events:
            c = events[0][0]
            if c > cycle:
                target = c
        fb = self.fetch_buffer
        if fb:
            c = fb[0].fetch_cycle + self._frontend_depth
            if c > cycle and (target < 0 or c < target):
                target = c
        if (
            self._waiting_branch is None
            and len(fb) < self._fetch_buffer_entries
            and not self._stream_empty()
        ):
            c = self._fetch_stall_until
            if c > cycle and (target < 0 or c < target):
                target = c
        if self._drain_queue:
            c = self._drain_port_free
            if c > cycle and (target < 0 or c < target):
                target = c
        for _name, queue, _width in self._issue_plan:
            if queue:
                c = queue[0][0]
                if c > cycle and (target < 0 or c < target):
                    target = c
        for c in self._unit_free.values():
            if c > cycle and (target < 0 or c < target):
                target = c
        if target < 0:
            raise SimulationError(
                f"{self.program.name}: deadlock at cycle {cycle} "
                f"(rob={len(self.rob)}, fb={len(self.fetch_buffer)}, "
                f"state={state.name})"
            )
        if cap is not None:
            target = min(target, max(cap, cycle + 1))
        skip = target - cycle - 1
        if skip <= 0:
            return
        self._attribute_skip(state, skip)
        horizon = cycle + skip
        sheap = self._sampler_heap
        if sheap and sheap[0][0] <= horizon:
            self._poll_samplers(horizon)
        self.cycle = horizon

    def _attribute_skip(self, state: CommitState, n: int) -> None:
        """Attribute *n* fast-forwarded cycles (state never COMPUTE)."""
        self.state_cycles[state] += n
        if self.cycle_trace is not None:
            self.cycle_trace.on_cycles(
                state, n, self.rob[0].seq if state is _STALLED else -1
            )
        if state is _STALLED:
            self.rob[0].exposed_stall += n
        elif state is _DRAINED:
            self._pending_drain += n
        elif state is _FLUSHED:
            index, psv = self.flush_blame
            if psv:
                ev = self._golden_ev
                key = (index, psv)
                ev[key] = ev.get(key, 0.0) + n
            else:
                self._golden_base[index] += n

    # ==================================================================
    # Instrumented step loop (repro.obs opt-in).
    # ==================================================================
    def _step_profiled(
        self, prof: StageProfiler, horizon: int | None = None
    ) -> None:
        """One cycle of :meth:`step`, with per-stage wall timing.

        Mirrors the optimised :meth:`step` statement for statement --
        same stage calls, same guards, same order -- so results are
        bit-identical; the only additions are ``perf_counter`` reads
        between stages and occupancy accumulation, fed to *prof*.
        """
        perf = perf_counter
        cycle = self.cycle + 1
        self.cycle = cycle

        t0 = perf()
        events = self._events
        if events and events[0][0] <= cycle:
            progressed = self._process_events()
        else:
            progressed = False
        t1 = perf()
        prof.add(EV_EVENTS, t1 - t0)

        rob = self.rob
        committed = _NO_UOPS
        if rob:
            head = rob[0]
            if head.complete and head.complete_time <= cycle:
                committed = self._commit()

        if committed:
            state = _COMPUTE
            progressed = True
        elif rob:
            self.rob_head = rob[0]
            state = _STALLED
        else:
            self.rob_head = None
            state = _FLUSHED if self._empty_is_flush else _DRAINED
        self.commit_state = state
        self.committing_now = committed

        self.state_cycles[state] += 1
        if state is _COMPUTE:
            share = 1.0 / len(committed)
            base = self._golden_base
            ev = self._golden_ev
            for uop in committed:
                psv = uop.psv
                if psv:
                    key = (uop.index, psv)
                    ev[key] = ev.get(key, 0.0) + share
                else:
                    base[uop.index] += share
        else:
            if self.cycle_trace is not None:
                self.cycle_trace.on_cycles(
                    state, 1, rob[0].seq if state is _STALLED else -1
                )
            if state is _STALLED:
                rob[0].exposed_stall += 1
            elif state is _DRAINED:
                self._pending_drain += 1
            else:  # FLUSHED
                index, psv = self.flush_blame
                if psv:
                    ev = self._golden_ev
                    key = (index, psv)
                    ev[key] = ev.get(key, 0.0) + 1
                else:
                    self._golden_base[index] += 1
        t2 = perf()
        prof.add(EV_COMMIT, t2 - t1)

        sheap = self._sampler_heap
        if sheap and sheap[0][0] <= cycle:
            self._poll_samplers(cycle)
        t3 = perf()
        prof.add(EV_SAMPLE, t3 - t2)

        for queue in self._issue_queues:
            if queue and queue[0][0] <= cycle:
                progressed |= self._issue()
                break
        t4 = perf()
        prof.add(EV_ISSUE, t4 - t3)

        fb = self.fetch_buffer
        if fb and cycle >= fb[0].fetch_cycle + self._frontend_depth:
            progressed |= self._dispatch()
        t5 = perf()
        prof.add(EV_DISPATCH, t5 - t4)

        if (
            self._waiting_branch is None
            and cycle >= self._fetch_stall_until
            and len(self.fetch_buffer) < self._fetch_buffer_entries
        ):
            progressed |= self._fetch()
        t6 = perf()
        prof.add(EV_FETCH, t6 - t5)

        if self._drain_queue and cycle >= self._drain_port_free:
            progressed |= self._start_drain()
        t7 = perf()
        prof.add(EV_DRAIN, t7 - t6)

        if not progressed and self.fast_forward:
            self._fast_forward(state, horizon)
            prof.add(EV_IDLE, perf() - t7)

        # Occupancy is unchanged across fast-forwarded cycles (nothing
        # progressed), so weighting by the cycles advanced this step
        # yields exact per-simulated-cycle averages.
        iq_occ = self._iq_occ  # tealint: instrumentation
        prof.occupancy(
            len(self.rob),
            len(self.fetch_buffer),
            iq_occ["int"],
            iq_occ["mem"],
            iq_occ["fp"],
            self.cycle - cycle + 1,
        )
        prof.maybe_flush(self.cycle)

    # tealint: disable=TL002 -- called only from _run_profiled, which
    # run() dispatches to behind obs.enabled().
    def _report_obs(self) -> None:
        """Report end-of-run counters into the obs registry.

        Called once per instrumented run -- aggregate statistics the
        core already tracks (commit-state stall causes, flush causes,
        cache/TLB hit rates, sampler overhead) become counters/gauges,
        and one final counter sample lands in the trace.
        """
        counters = obs.COUNTERS
        counters.inc("core.runs")
        counters.inc("core.cycles", self.cycle)
        counters.inc("core.committed", self.committed_total)
        for state, count in self.state_cycles.items():
            counters.inc(f"core.state.{state.name.lower()}", count)
        flushes = self.flushes
        counters.inc("core.flush.mispredict", flushes.mispredicts)
        counters.inc("core.flush.serial", flushes.serial)
        counters.inc("core.flush.ordering", flushes.ordering)
        hierarchy = self.hierarchy
        rates: dict[str, float] = {}
        for label, unit in (
            ("l1i", hierarchy.l1i),
            ("l1d", hierarchy.l1d),
            ("llc", hierarchy.llc),
            ("itlb", hierarchy.itlb),
            ("dtlb", hierarchy.dtlb),
        ):
            stats = unit.stats
            hit_rate = 1.0 - stats.miss_rate
            counters.gauge(f"mem.{label}.hit_rate", hit_rate)
            counters.inc(f"mem.{label}.accesses", stats.accesses)
            rates[f"{label}_hit_rate"] = round(hit_rate, 6)
        counters.sample(f"core.{self.program.name}.mem", rates)
        for sampler in self.samplers:
            counters.inc(
                f"sampler.{sampler.name}.samples",
                sampler.samples_taken,
            )

    # ==================================================================
    # Commit stage.
    # ==================================================================
    def _commit(self) -> list[Uop]:
        rob = self.rob
        cycle = self.cycle
        committed: list[Uop] | None = None
        budget = self._commit_width
        limit = self._commit_limit
        if limit is not None:
            # Sampled measurement window: never overshoot the boundary
            # even within one commit group.
            remaining = limit - self.committed_total
            if remaining <= 0:
                return _NO_UOPS
            if remaining < budget:
                budget = remaining
        flushed = False
        while budget and rob:
            head = rob[0]
            if not head.complete or head.complete_time > cycle:
                break
            rob.popleft()
            head.committed = True
            if committed is None:
                committed = [head]
            else:
                committed.append(head)
            budget -= 1
            if head.is_load:
                self._lq_occ -= 1
                self._unregister_load(head)
            elif head.is_store:
                self._drain_queue.append(head)
            if head.causes_flush:
                # Serializing op: flush everything younger at commit.
                if head.op_class == OpClass.SERIAL:
                    self.flushes.serial += 1
                    self._squash_younger_than(head.seq)
                    self._fetch_stall_until = max(
                        self._fetch_stall_until,
                        cycle + self._redirect_penalty,
                    )
                flushed = True
                break
        if committed is None:
            return _NO_UOPS
        base = self._golden_base
        ev = self._golden_ev
        # Drained cycles go to the next-committing instruction.
        first = committed[0]
        if self._pending_drain:
            psv = first.psv
            if psv:
                key = (first.index, psv)
                ev[key] = ev.get(key, 0.0) + self._pending_drain
            else:
                base[first.index] += self._pending_drain
            self._pending_drain = 0.0
        if self._drain_waiters:
            for sampler, weight in self._drain_waiters:
                sampler.capture(
                    first.index, first.psv, weight, cycle=cycle
                )
            self._drain_waiters.clear()
        exec_counts = self.exec_counts
        event_counts = self.event_counts
        stall_histogram = self.stall_histogram
        psv_bits_cache = self._psv_bits_cache
        for uop in committed:
            index = uop.index
            psv = uop.psv
            stall = uop.exposed_stall
            if stall:
                if psv:
                    key = (index, psv)
                    ev[key] = ev.get(key, 0.0) + stall
                else:
                    base[index] += stall
            if uop.pending_samples:
                for sampler, weight in uop.pending_samples:
                    sampler.capture(index, psv, weight, cycle=cycle)
                uop.pending_samples.clear()
            # Per-commit statistics (_account_commit, inlined; the PSV
            # bit decomposition is cached -- few distinct PSVs recur).
            exec_counts[index] = exec_counts.get(index, 0) + 1
            if psv:
                self.evented_execs += 1
                bit_nums = psv_bits_cache.get(psv)
                if bit_nums is None:
                    bits = psv
                    decomposed = []
                    while bits:
                        low = bits & -bits
                        decomposed.append(low.bit_length() - 1)
                        bits ^= low
                    bit_nums = tuple(decomposed)
                    psv_bits_cache[psv] = bit_nums
                for bit_num in bit_nums:
                    ekey = (index, bit_num)
                    event_counts[ekey] = event_counts.get(ekey, 0) + 1
                if len(bit_nums) >= 2:
                    self.combined_execs += 1
            elif stall:
                stall_histogram[stall] += 1
        self.committed_total += len(committed)
        if self.cycle_trace is not None:
            self.cycle_trace.on_commit(
                [(u.seq, u.index, u.psv) for u in committed]
            )
        last = committed[-1]
        self._last_committed = (last.index, last.psv)
        self._last_committed_seq = last.seq
        self._empty_is_flush = flushed or last.causes_flush
        if self._empty_is_flush:
            self.flush_blame = (last.index, last.psv)
        return committed

    def _account_commit(self, uop: Uop) -> None:
        """Per-commit statistics (reference loop; inlined in _commit)."""
        index = uop.index
        self.exec_counts[index] = self.exec_counts.get(index, 0) + 1
        psv = uop.psv
        if psv:
            self.evented_execs += 1
            bits = psv
            n_bits = 0
            while bits:
                low = bits & -bits
                event_num = low.bit_length() - 1
                key = (index, event_num)
                self.event_counts[key] = self.event_counts.get(key, 0) + 1
                bits ^= low
                n_bits += 1
            if n_bits >= 2:
                self.combined_execs += 1
        elif uop.exposed_stall:
            self.stall_histogram[uop.exposed_stall] += 1

    # ==================================================================
    # Event processing (completions, SQ frees).
    # ==================================================================
    def _process_events(self) -> bool:
        events = self._events
        cycle = self.cycle
        ready = self._ready
        progressed = False
        while events and events[0][0] <= cycle:
            time, _uid, kind, uop = heappop(events)
            progressed = True
            if kind == _EV_SQ_FREE:
                self._sq_occ -= 1
                self._unregister_store(uop)
                continue
            if uop.squashed:
                continue
            uop.complete = True
            uop.complete_time = time
            dependents = uop.dependents
            if dependents:
                for dep in dependents:
                    if dep.squashed or not dep.dispatched:
                        continue
                    dep.deps_remaining -= 1
                    if dep.deps_remaining == 0:
                        heappush(
                            ready[dep.queue], (time, dep.uid, dep)
                        )
                dependents.clear()
            if uop.mispredicted and self._waiting_branch is uop:
                self._waiting_branch = None
                self._fetch_stall_until = max(
                    self._fetch_stall_until,
                    time + self._redirect_penalty,
                )
                self._current_fetch_line = -1
        return progressed

    # ==================================================================
    # Issue / execute.
    # ==================================================================
    def _issue(self) -> bool:
        cycle = self.cycle
        issued_any = False
        for _name, queue, width in self._issue_plan:
            if not queue or queue[0][0] > cycle:
                continue
            budget = width
            deferred: list[tuple[int, int, Uop]] = []
            while budget and queue and queue[0][0] <= cycle:
                _rt, uid, uop = heappop(queue)
                if uop.squashed:
                    continue
                retry = self._try_execute(uop)
                if retry is not None:
                    deferred.append((retry, uid, uop))
                    continue
                budget -= 1
                issued_any = True
            for entry in deferred:
                heappush(queue, entry)
        return issued_any

    def _try_execute(self, uop: Uop) -> int | None:
        """Execute *uop* now; return a retry time if it cannot issue yet."""
        cycle = self.cycle
        op_cls = uop.op_class

        if op_cls == OpClass.SERIAL and (
            not self.rob or self.rob[0] is not uop
        ):
            # Serializing ops execute non-speculatively at the ROB head.
            return cycle + 1

        unpipelined = op_cls in self._unpipelined
        if unpipelined:
            free = self._unit_free[op_cls]
            if free > cycle:
                return free

        uop.in_iq = False
        self._iq_occ[uop.queue] -= 1

        if uop.is_load:
            completion = self._execute_load(uop)
        elif uop.is_store:
            completion = self._execute_store(uop)
        elif op_cls == OpClass.PREFETCH:
            self.hierarchy.prefetch(uop.eff_addr, cycle)
            completion = cycle + self._latencies[OpClass.PREFETCH]
        else:
            completion = cycle + self._latencies[op_cls]
            if unpipelined:
                self._unit_free[op_cls] = completion
        heappush(
            self._events, (completion, uop.uid, _EV_COMPLETE, uop)
        )
        return None

    def _execute_load(self, uop: Uop) -> int:
        cycle = self.cycle
        addr = uop.eff_addr
        word = addr >> 3
        # Store-to-load forwarding from the youngest older executed store.
        best: Uop | None = None
        for store in self._store_addr_map.get(word, ()):
            if store.seq < uop.seq and (
                best is None or store.seq > best.seq
            ):
                best = store
        self._executed_loads.setdefault(word, []).append(uop)
        if best is not None:
            uop.forwarded = True
            return cycle + 1
        ready = self.hierarchy.load_fast(addr, cycle)
        if ready is not None:
            return ready if ready > cycle else cycle + 1
        access = self.hierarchy.access_load(addr, cycle)
        if access.l1_miss:
            uop.psv |= _BIT_ST_L1
        if access.llc_miss:
            uop.psv |= _BIT_ST_LLC
        if access.tlb_miss:
            uop.psv |= _BIT_ST_TLB
        ready = access.ready_time
        return ready if ready > cycle else cycle + 1

    def _execute_store(self, uop: Uop) -> int:
        cycle = self.cycle
        addr = uop.eff_addr
        word = addr >> 3
        # Address generation includes translation (the STA µop).
        tlb = self.hierarchy.dtlb.lookup(addr)
        if not tlb.hit:
            uop.psv |= _BIT_ST_TLB
        self._store_addr_map.setdefault(word, []).append(uop)
        # Memory-ordering violation: a younger load already executed.
        violator: Uop | None = None
        for load in self._executed_loads.get(word, ()):
            if load.seq > uop.seq and not load.squashed:
                if violator is None or load.seq < violator.seq:
                    violator = load
        if violator is not None:
            self.flushes.ordering += 1
            self._mo_seqs.add(violator.seq)
            self._squash_younger_than(violator.seq - 1)
            self._fetch_stall_until = max(
                self._fetch_stall_until,
                cycle + self._redirect_penalty,
            )
        return cycle + tlb.latency + self._latencies[OpClass.STORE]

    # ==================================================================
    # Dispatch.
    # ==================================================================
    def _dispatch(self) -> bool:
        cycle = self.cycle
        fb = self.fetch_buffer
        rob = self.rob
        iq_occ = self._iq_occ
        iq_cap = self._iq_cap
        rob_entries = self._rob_entries
        frontend_depth = self._frontend_depth
        budget = self._decode_width
        progressed = False
        tag_waiters = self._dispatch_tag_waiters
        dispatched: list[Uop] | None = [] if tag_waiters else None
        while budget and fb:
            uop = fb[0]
            if cycle < uop.fetch_cycle + frontend_depth:
                break
            if len(rob) >= rob_entries:
                break
            if iq_occ[uop.queue] >= iq_cap[uop.queue]:
                break
            if uop.is_load and self._lq_occ >= self._lq_entries:
                break
            if uop.is_store:
                if self._sq_occ >= self._sq_entries:
                    # DR-SQ: the store stalls at dispatch because the LSQ
                    # is full of completed but not yet retired stores.
                    uop.psv |= _BIT_DR_SQ
                    break
                self._sq_occ += 1
            if uop.is_load:
                self._lq_occ += 1
            fb.popleft()
            uop.dispatched = True
            rob.append(uop)
            iq_occ[uop.queue] += 1
            uop.in_iq = True
            self._rename(uop)
            if dispatched is not None:
                dispatched.append(uop)
            budget -= 1
            progressed = True
        if dispatched:
            # Hardware taggers mark one dispatch slot of the tag cycle;
            # model the slot choice as uniform over this cycle's group.
            for sampler, weight in tag_waiters:
                target = sampler.rng.choice(dispatched)
                pend = target.pending_samples
                if pend is None:
                    target.pending_samples = [(sampler, weight)]
                else:
                    pend.append((sampler, weight))
            tag_waiters.clear()
        return progressed

    def _rename(self, uop: Uop) -> None:
        last_writer = self._last_writer
        deps = 0
        for reg in self._sources_by_index[uop.index]:
            if reg == 0:
                continue  # x0 is hard-wired to zero
            producer = last_writer.get(reg)
            if (
                producer is not None
                and not producer.complete
                and not producer.squashed
            ):
                deps_list = producer.dependents
                if deps_list is None:
                    producer.dependents = [uop]
                else:
                    deps_list.append(uop)
                deps += 1
        rd = uop.static.rd
        if rd != NO_REG and rd != 0:
            uop.prev_writer = last_writer.get(rd)
            last_writer[rd] = uop
        uop.deps_remaining = deps
        if deps == 0:
            heappush(
                self._ready[uop.queue], (self.cycle + 1, uop.uid, uop)
            )

    # ==================================================================
    # Fetch.
    # ==================================================================
    def _fetch(self) -> bool:
        cycle = self.cycle
        if self._waiting_branch is not None:
            return False
        if cycle < self._fetch_stall_until:
            return False
        fb = self.fetch_buffer
        fb_entries = self._fetch_buffer_entries
        line_bytes = self._line_bytes
        hierarchy = self.hierarchy
        replay = self._replay
        budget = self._fetch_width
        progressed = False
        tag_waiters = self._fetch_tag_waiters
        fetched: list[Uop] | None = [] if tag_waiters else None
        stream = self._stream
        source = self._source
        queue_by_index = self._queue_by_index
        class_by_index = self._class_by_index
        control_by_index = self._control_by_index
        mo_seqs = self._mo_seqs
        while budget and len(fb) < fb_entries:
            # Consume the stream directly (peek + popleft churns the
            # replay deque once per instruction); an icache stall pushes
            # the instruction back instead.
            if replay:
                dyn = replay.popleft()
            elif stream.done:
                break
            else:
                try:
                    dyn = next(source)
                except StopIteration:
                    stream.done = True
                    break
            index = dyn.static.index
            addr = index * INST_BYTES
            line = addr // line_bytes
            if line != self._current_fetch_line:
                ready = hierarchy.inst_fast(addr, cycle)
                if ready is None:
                    access = hierarchy.access_inst(addr, cycle)
                    ready = access.ready_time
                    icache_miss = access.icache_miss
                    itlb_miss = access.itlb_miss
                else:
                    icache_miss = itlb_miss = False
                self._current_fetch_line = line
                if ready > cycle:
                    self._fetch_stall_until = ready
                    psv_bits = 0
                    if icache_miss:
                        psv_bits |= _BIT_DR_L1
                    if itlb_miss:
                        psv_bits |= _BIT_DR_TLB
                    self._pending_fetch_psv |= psv_bits
                    replay.appendleft(dyn)
                    break
            # _make_uop, inlined (rare-condition checks guarded).
            op_cls = class_by_index[index]
            uop = Uop(dyn, cycle, queue_by_index[index], op_cls)
            if self._pending_fetch_psv:
                uop.psv |= self._pending_fetch_psv
                self._pending_fetch_psv = 0
            if mo_seqs and dyn.seq in mo_seqs:
                mo_seqs.discard(dyn.seq)
                uop.psv |= _BIT_FL_MO
            if op_cls is OpClass.SERIAL:
                # fsflags/frflags-style ops always flush; statically known.
                uop.psv |= _BIT_FL_EX
                uop.causes_flush = True
            fb.append(uop)
            if fetched is not None:
                fetched.append(uop)
            progressed = True
            budget -= 1
            if control_by_index[index] and not self._handle_control(uop):
                break  # fetch redirect or mispredict stall
        if fetched:
            for sampler, weight in tag_waiters:
                target = sampler.rng.choice(fetched)
                pend = target.pending_samples
                if pend is None:
                    target.pending_samples = [(sampler, weight)]
                else:
                    pend.append((sampler, weight))
            tag_waiters.clear()
        return progressed

    def _handle_control(self, uop: Uop) -> bool:
        """Predict a fetched control µop; False ends this fetch packet."""
        op = uop.static.op
        op_cls = uop.op_class
        cycle = self.cycle
        predictor = self.predictor
        if op_cls == OpClass.BRANCH:
            pc = uop.index
            predicted = predictor.predict_direction(pc)
            actual = uop.dyn.taken
            target_known = predictor.predict_target(pc) is not None
            predictor.update(pc, actual, uop.dyn.next_index)
            if predicted != actual:
                uop.mispredicted = True
                uop.causes_flush = True
                uop.psv |= _BIT_FL_MB
                self.flushes.mispredicts += 1
                self._waiting_branch = uop
                return False
            if actual:
                self._current_fetch_line = -1
                if not target_known:
                    self._fetch_stall_until = (
                        cycle + self._btb_miss_penalty
                    )
                return False
            return True
        if op == Opcode.JUMP or op == Opcode.CALL:
            pc = uop.index
            target_known = predictor.predict_target(pc) is not None
            predictor.update(pc, True, uop.dyn.next_index)
            if op == Opcode.CALL:
                predictor.push_return(uop.index + 1)
            self._current_fetch_line = -1
            if not target_known:
                self._fetch_stall_until = (
                    cycle + self._btb_miss_penalty
                )
            return False
        if op == Opcode.RET:
            predicted = predictor.predict_return()
            actual = uop.dyn.next_index
            if predicted != actual:
                uop.mispredicted = True
                uop.causes_flush = True
                uop.psv |= _BIT_FL_MB
                self.flushes.mispredicts += 1
                self._waiting_branch = uop
                return False
            self._current_fetch_line = -1
            return False
        return True

    # ==================================================================
    # Squash (flush) machinery.
    # ==================================================================
    def _squash_younger_than(self, boundary_seq: int) -> None:
        """Squash every µop with seq > boundary_seq and replay its trace."""
        squashed: list[Uop] = []
        rob = self.rob
        while rob and rob[-1].seq > boundary_seq:
            squashed.append(rob.pop())
        while self.fetch_buffer:
            # The fetch buffer only ever holds µops younger than the ROB.
            squashed.append(self.fetch_buffer.pop())
        squashed.sort(key=lambda u: -u.seq)
        for uop in squashed:
            uop.squashed = True
            if uop.in_iq:
                self._iq_occ[uop.queue] -= 1
                uop.in_iq = False
            if uop.dispatched:
                if uop.is_load:
                    self._lq_occ -= 1
                    self._unregister_load(uop)
                elif uop.is_store:
                    self._sq_occ -= 1
                    self._unregister_store(uop)
                rd = uop.static.rd
                if rd != NO_REG and rd != 0:
                    if self._last_writer.get(rd) is uop:
                        if uop.prev_writer is not None:
                            self._last_writer[rd] = uop.prev_writer
                        else:
                            del self._last_writer[rd]
            pend = uop.pending_samples
            if pend:
                for sampler, _weight in pend:
                    sampler.drop()
                pend.clear()
        # Replay the dynamic trace of the squashed µops, oldest first at
        # the front of the replay queue (squashed is youngest-first).
        self._replay.extendleft(uop.dyn for uop in squashed)
        if self._waiting_branch is not None and self._waiting_branch.squashed:
            self._waiting_branch = None
        self._current_fetch_line = -1
        self._pending_fetch_psv = 0

    def _unregister_load(self, uop: Uop) -> None:
        word = uop.eff_addr >> 3
        loads = self._executed_loads.get(word)
        if loads is not None:
            try:
                loads.remove(uop)
            except ValueError:
                pass
            if not loads:
                del self._executed_loads[word]

    def _unregister_store(self, uop: Uop) -> None:
        word = uop.eff_addr >> 3
        stores = self._store_addr_map.get(word)
        if stores is not None:
            try:
                stores.remove(uop)
            except ValueError:
                pass
            if not stores:
                del self._store_addr_map[word]

    # ==================================================================
    # Post-commit store draining.
    # ==================================================================
    def _start_drain(self) -> bool:
        cycle = self.cycle
        if not self._drain_queue or cycle < self._drain_port_free:
            return False
        store = self._drain_queue.popleft()
        ready = self.hierarchy.store_fast(store.eff_addr, cycle)
        if ready is None:
            ready = self.hierarchy.access_store(
                store.eff_addr, cycle, translate=False
            ).ready_time
        self._drain_port_free = cycle + 1
        heappush(
            self._events,
            (ready if ready > cycle else cycle + 1,
             store.uid, _EV_SQ_FREE, store),
        )
        return True

    # ==================================================================
    # Frozen pre-optimisation loop (the A/B reference).
    #
    # These methods preserve the seed per-cycle loop verbatim: linear
    # sampler polling over self.samplers and direct dict-of-tuples
    # golden accumulation. They are dispatched when reference_loop=True
    # and exist so the A/B harness can verify the optimised loop above
    # produces bit-identical golden and sampler profiles. Do not
    # optimise them.
    # ==================================================================
    def _step_reference(self, horizon: int | None = None) -> None:
        """One cycle of the pre-optimisation loop (see class docstring)."""
        self.cycle += 1
        cycle = self.cycle

        progressed = self._process_events()
        committed = self._commit_reference()
        state = self._classify(committed)
        self.commit_state = state
        self.committing_now = committed
        self._attribute_reference(state, 1, committed)
        for sampler in self.samplers:
            while sampler.next_due <= cycle:
                sampler.sample(self)
                sampler.advance()

        progressed |= bool(committed)
        progressed |= self._issue()
        progressed |= self._dispatch()
        progressed |= self._fetch()
        progressed |= self._start_drain()

        if not progressed and self.fast_forward:
            self._fast_forward_reference(state, horizon)

    def _fast_forward_reference(
        self, state: CommitState, cap: int | None = None
    ) -> None:
        """Pre-optimisation fast-forward (per-sampler replay loops)."""
        cycle = self.cycle
        candidates: list[int] = []
        if self._events:
            candidates.append(self._events[0][0])
        if self.fetch_buffer:
            candidates.append(
                self.fetch_buffer[0].fetch_cycle + self.config.frontend_depth
            )
        if (
            self._waiting_branch is None
            and not self._stream_empty()
            and len(self.fetch_buffer) < self.config.fetch_buffer_entries
        ):
            candidates.append(self._fetch_stall_until)
        if self._drain_queue:
            candidates.append(self._drain_port_free)
        for queue in self._ready.values():
            if queue:
                candidates.append(queue[0][0])
        for free_time in self._unit_free.values():
            if free_time > cycle:
                candidates.append(free_time)
        future = [c for c in candidates if c > cycle]
        if not future:
            raise SimulationError(
                f"{self.program.name}: deadlock at cycle {cycle} "
                f"(rob={len(self.rob)}, fb={len(self.fetch_buffer)}, "
                f"state={state.name})"
            )
        target = min(future)
        if cap is not None:
            target = min(target, max(cap, cycle + 1))
        skip = target - cycle - 1
        if skip <= 0:
            return
        self._attribute_reference(state, skip, [])
        horizon = cycle + skip
        for sampler in self.samplers:
            while sampler.next_due <= horizon:
                sampler.sample(self)
                sampler.advance()
        self.cycle = horizon

    def _classify(self, committed: list[Uop]) -> CommitState:
        if committed:
            return CommitState.COMPUTE
        if self.rob:
            self.rob_head = self.rob[0]
            return CommitState.STALLED
        self.rob_head = None
        if self._empty_is_flush:
            return CommitState.FLUSHED
        return CommitState.DRAINED

    def _attribute_reference(
        self, state: CommitState, n: int, committed: list[Uop]
    ) -> None:
        self.state_cycles[state] += n
        if (
            self.cycle_trace is not None
            and state != CommitState.COMPUTE
        ):
            head_seq = (
                self.rob[0].seq if state == CommitState.STALLED else -1
            )
            self.cycle_trace.on_cycles(state, n, head_seq)
        if state == CommitState.COMPUTE:
            share = 1.0 / len(committed)
            raw = self.golden_raw
            for uop in committed:
                key = (uop.index, uop.psv)
                raw[key] = raw.get(key, 0.0) + share
        elif state == CommitState.STALLED:
            self.rob[0].exposed_stall += n
        elif state == CommitState.DRAINED:
            self._pending_drain += n
        else:  # FLUSHED
            key = self.flush_blame
            self.golden_raw[key] = self.golden_raw.get(key, 0.0) + n

    def _commit_reference(self) -> list[Uop]:
        """Pre-optimisation commit (direct golden_raw accumulation)."""
        rob = self.rob
        cycle = self.cycle
        committed: list[Uop] = []
        budget = self.config.commit_width
        limit = self._commit_limit
        if limit is not None:
            remaining = limit - self.committed_total
            if remaining <= 0:
                return []
            if remaining < budget:
                budget = remaining
        flushed = False
        while budget and rob:
            head = rob[0]
            if not head.complete or head.complete_time > cycle:
                break
            rob.popleft()
            head.committed = True
            committed.append(head)
            budget -= 1
            if head.is_load:
                self._lq_occ -= 1
                self._unregister_load(head)
            elif head.is_store:
                self._drain_queue.append(head)
            if head.causes_flush:
                if head.op_class == OpClass.SERIAL:
                    self.flushes.serial += 1
                    self._squash_younger_than(head.seq)
                    self._fetch_stall_until = max(
                        self._fetch_stall_until,
                        cycle + self.config.redirect_penalty,
                    )
                flushed = True
                break
        if committed:
            raw = self.golden_raw
            last = committed[-1]
            first = committed[0]
            if self._pending_drain:
                key = (first.index, first.psv)
                raw[key] = raw.get(key, 0.0) + self._pending_drain
                self._pending_drain = 0.0
            if self._drain_waiters:
                for sampler, weight in self._drain_waiters:
                    sampler.capture(
                        first.index, first.psv, weight, cycle=cycle
                    )
                self._drain_waiters.clear()
            for uop in committed:
                key = (uop.index, uop.psv)
                if uop.exposed_stall:
                    raw[key] = raw.get(key, 0.0) + uop.exposed_stall
                if uop.pending_samples:
                    for sampler, weight in uop.pending_samples:
                        sampler.capture(
                            uop.index, uop.psv, weight, cycle=cycle
                        )
                    uop.pending_samples.clear()
                self._account_commit(uop)
            self.committed_total += len(committed)
            if self.cycle_trace is not None:
                self.cycle_trace.on_commit(
                    [(u.seq, u.index, u.psv) for u in committed]
                )
            self._last_committed = (last.index, last.psv)
            self._last_committed_seq = last.seq
            self._empty_is_flush = flushed or last.causes_flush
            if self._empty_is_flush:
                self.flush_blame = (last.index, last.psv)
        return committed


def simulate(
    program: Program,
    config: CoreConfig | None = None,
    samplers: Iterable = (),
    arch_state: ArchState | None = None,
    max_cycles: int = 500_000_000,
    fast_forward: bool = True,
    reference_loop: bool = False,
    cycle_trace=None,
) -> CoreResult:
    """Convenience wrapper: build a :class:`Core` and run it."""
    core = Core(
        program, config, samplers, arch_state,
        fast_forward=fast_forward, reference_loop=reference_loop,
        cycle_trace=cycle_trace,
    )
    return core.run(max_cycles)
