"""The in-flight micro-operation record of the timing model."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.isa.instructions import DynInst
from repro.isa.opcodes import OpClass, op_class

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.samplers import Sampler


class Uop:
    """One in-flight µop: a dynamic instruction plus pipeline state.

    Carries the Performance Signature Vector (``psv``) that TEA attaches
    to every in-flight instruction, the golden-reference attribution
    accumulators, and deferred sampler captures that resolve when the µop
    commits.
    """

    __slots__ = (
        "dyn",
        "uid",
        "seq",
        "index",
        "op_class",
        "queue",
        "psv",
        "fetch_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "complete_time",
        "dispatched",
        "complete",
        "committed",
        "squashed",
        "in_iq",
        "is_load",
        "is_store",
        "mispredicted",
        "causes_flush",
        "deps_remaining",
        "dependents",
        "prev_writer",
        "exposed_stall",
        "pending_samples",
        "forwarded",
    )

    _next_uid = 0

    def __init__(self, dyn: DynInst, fetch_cycle: int, queue: str) -> None:
        self.dyn = dyn
        # Unique, monotonically increasing id: a refetched instance of
        # the same dynamic instruction (same seq) gets a fresh uid, which
        # keeps heap entries totally ordered.
        self.uid = Uop._next_uid
        Uop._next_uid += 1
        self.seq = dyn.seq
        self.index = dyn.static.index
        self.op_class: OpClass = op_class(dyn.static.op)
        self.queue = queue
        self.psv = 0
        self.fetch_cycle = fetch_cycle
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.complete_time = -1
        self.dispatched = False
        self.complete = False
        self.committed = False
        self.squashed = False
        self.in_iq = False
        self.is_load = self.op_class == OpClass.LOAD
        self.is_store = self.op_class == OpClass.STORE
        self.mispredicted = False
        self.causes_flush = False
        self.deps_remaining = 0
        self.dependents: list["Uop"] = []
        self.prev_writer: "Uop | None" = None
        # Golden attribution: commit-stall cycles exposed by this µop,
        # added to the profile with the final PSV when it commits.
        self.exposed_stall = 0
        # Deferred sampler captures: (sampler, weight).
        self.pending_samples: list[tuple["Sampler", float]] = []
        self.forwarded = False

    @property
    def static(self):
        """The static instruction."""
        return self.dyn.static

    @property
    def eff_addr(self) -> int:
        """Memory effective address (-1 for non-memory ops)."""
        return self.dyn.eff_addr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Uop(seq={self.seq}, {self.dyn.static.disasm()!r}, "
            f"psv={self.psv:#05x})"
        )
