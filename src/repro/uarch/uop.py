"""The in-flight micro-operation record of the timing model."""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING

from repro.isa.instructions import DynInst
from repro.isa.opcodes import OpClass, op_class

#: Process-wide µop id source; uniqueness is all that matters, so one
#: shared counter is fine across cores.
_uid_source = count()

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.samplers import Sampler


class Uop:
    """One in-flight µop: a dynamic instruction plus pipeline state.

    Carries the Performance Signature Vector (``psv``) that TEA attaches
    to every in-flight instruction, the golden-reference attribution
    accumulators, and deferred sampler captures that resolve when the µop
    commits.
    """

    __slots__ = (
        "dyn",
        "static",
        "eff_addr",
        "uid",
        "seq",
        "index",
        "op_class",
        "queue",
        "psv",
        "fetch_cycle",
        "complete_time",
        "dispatched",
        "complete",
        "committed",
        "squashed",
        "in_iq",
        "is_load",
        "is_store",
        "mispredicted",
        "causes_flush",
        "deps_remaining",
        "dependents",
        "prev_writer",
        "exposed_stall",
        "pending_samples",
        "forwarded",
    )

    def __init__(
        self,
        dyn: DynInst,
        fetch_cycle: int,
        queue: str,
        op_cls: OpClass | None = None,
    ) -> None:
        self.dyn = dyn
        # Unique, monotonically increasing id: a refetched instance of
        # the same dynamic instruction (same seq) gets a fresh uid, which
        # keeps heap entries totally ordered.
        self.uid = next(_uid_source)
        self.seq = dyn.seq
        self.static = dyn.static
        self.eff_addr = dyn.eff_addr
        self.index = dyn.static.index
        # The core passes its precomputed per-opcode class to keep the
        # enum lookup off the fetch hot path.
        self.op_class: OpClass = (
            op_class(dyn.static.op) if op_cls is None else op_cls
        )
        self.queue = queue
        self.psv = 0
        self.fetch_cycle = fetch_cycle
        self.complete_time = -1
        self.dispatched = False
        self.complete = False
        self.committed = False
        self.squashed = False
        self.in_iq = False
        self.is_load = self.op_class is OpClass.LOAD
        self.is_store = self.op_class is OpClass.STORE
        self.mispredicted = False
        self.causes_flush = False
        self.deps_remaining = 0
        # Lazily allocated (None == empty): most µops never grow either
        # list, and the two allocations dominate construction cost.
        self.dependents: list["Uop"] | None = None
        self.prev_writer: "Uop | None" = None
        # Golden attribution: commit-stall cycles exposed by this µop,
        # added to the profile with the final PSV when it commits.
        self.exposed_stall = 0
        # Deferred sampler captures: (sampler, weight).
        self.pending_samples: list[tuple["Sampler", float]] | None = None
        self.forwarded = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Uop(seq={self.seq}, {self.dyn.static.disasm()!r}, "
            f"psv={self.psv:#05x})"
        )
