"""Cycle-level model of a BOOM-class 4-wide out-of-order core.

This is the reproduction's substitute for the paper's FireSim/FPGA BOOM
RTL (see DESIGN.md): a trace-driven, cycle-stepped timing model with the
structures TEA's evaluation exercises -- fetch packets and a fetch buffer,
a 192-entry ROB, per-class issue queues, a load/store queue with
store-to-load forwarding and memory-ordering-violation detection, post-
commit store draining, full flush machinery, and per-cycle commit-state
classification with golden-reference attribution built in.
"""

from repro.uarch.config import CoreConfig
from repro.uarch.uop import Uop
from repro.uarch.core import Core, CoreResult, simulate
from repro.uarch.multicore import CoreSlot, MultiCoreSystem, co_run
from repro.uarch.presets import PRESETS, preset
from repro.uarch.summary import render_summary

__all__ = [
    "CoreConfig",
    "Uop",
    "Core",
    "CoreResult",
    "simulate",
    "CoreSlot",
    "MultiCoreSystem",
    "co_run",
    "PRESETS",
    "preset",
    "render_summary",
]
