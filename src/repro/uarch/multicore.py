"""Multicore simulation: per-core pipelines sharing the LLC and DRAM.

The paper notes TEA needs "one TEA unit per physical core" and that its
samples carry logical-core/process identifiers, so per-thread PICS come
for free. This module demonstrates that -- and enables a result the
paper does not show: *interference analysis*. Co-running workloads share
the LLC and the DRAM channel; a victim's PICS visibly shift toward
ST-LLC-bearing categories when a memory-hungry neighbour evicts its
lines, quantifying exactly which instructions pay for the contention.

Cores execute in loose lockstep: each scheduling step advances the
core with the smallest local clock, with fast-forwarding capped a
``quantum`` beyond its peers so shared-structure timestamps stay
near-monotonic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import SetAssocCache
from repro.memory.dram import Dram
from repro.memory.hierarchy import MemoryHierarchy
from repro.uarch.config import CoreConfig
from repro.uarch.core import Core, CoreResult, SimulationError
from repro.workloads.base import Workload


@dataclass
class CoreSlot:
    """One hardware context: a workload plus its samplers."""

    workload: Workload
    samplers: list = None

    def __post_init__(self):
        if self.samplers is None:
            self.samplers = []


class MultiCoreSystem:
    """N cores with private L1s/TLBs and a shared LLC + DRAM channel.

    Args:
        slots: One :class:`CoreSlot` per core.
        config: Per-core configuration (Table 2 defaults).
        quantum: Maximum clock skew (cycles) allowed between cores.
    """

    def __init__(
        self,
        slots: list[CoreSlot],
        config: CoreConfig | None = None,
        quantum: int = 64,
    ) -> None:
        if not slots:
            raise ValueError("need at least one core slot")
        self.config = config or CoreConfig()
        self.quantum = quantum
        mem = self.config.memory
        self.shared_llc = SetAssocCache(
            "LLC", mem.llc_size, mem.llc_assoc, mem.line_bytes,
            mem.llc_mshrs,
        )
        self.shared_dram = Dram(
            mem.dram_latency, mem.dram_cycles_per_line
        )
        self.cores: list[Core] = []
        for slot in slots:
            hierarchy = MemoryHierarchy(
                mem,
                shared_llc=self.shared_llc,
                shared_dram=self.shared_dram,
            )
            self.cores.append(
                Core(
                    slot.workload.program,
                    config=self.config,
                    samplers=slot.samplers,
                    arch_state=slot.workload.fresh_state(),
                    hierarchy=hierarchy,
                )
            )

    def run(self, max_cycles: int = 500_000_000) -> list[CoreResult]:
        """Run every core to completion; returns one result per core.

        Cores that finish early stop consuming cycles (their clocks
        freeze); the rest continue against the shared LLC/DRAM.

        Raises:
            SimulationError: If any core exceeds *max_cycles*.
        """
        for core in self.cores:
            core.start()
        active = [c for c in self.cores if c.active()]
        while active:
            # Advance the core with the smallest local clock; cap its
            # fast-forward a quantum past the next-slowest peer.
            core = min(active, key=lambda c: c.cycle)
            if core.cycle >= max_cycles:
                raise SimulationError(
                    f"{core.program.name}: exceeded {max_cycles} cycles"
                )
            others = [c.cycle for c in active if c is not core]
            horizon = (
                min(others) + self.quantum if others else None
            )
            core.step(horizon)
            if not core.active():
                core.finish()
                active = [c for c in active if c is not core]
        return [core.result() for core in self.cores]


def co_run(
    workloads: list[Workload],
    samplers_per_core: list[list] | None = None,
    config: CoreConfig | None = None,
) -> list[CoreResult]:
    """Convenience: co-run workloads on one shared-LLC system."""
    slots = [
        CoreSlot(
            workload=workload,
            samplers=(
                samplers_per_core[i] if samplers_per_core else []
            ),
        )
        for i, workload in enumerate(workloads)
    ]
    return MultiCoreSystem(slots, config=config).run()
