"""Human-readable summaries of a finished simulation.

`render_summary` prints the machine-level statistics a performance
engineer would check next to the PICS: IPC, commit-state cycle stack,
cache/TLB/branch/DRAM behaviour, and flush counts. Used by
``tea-repro profile``.
"""

from __future__ import annotations

from repro.core.states import CommitState
from repro.uarch.core import CoreResult


def _rate(part: float, whole: float) -> str:
    return f"{part / whole:.1%}" if whole else "n/a"


def render_summary(result: CoreResult) -> str:
    """A multi-line statistics summary of one run."""
    h = result.hierarchy
    lines = [
        f"program: {result.program.name}",
        f"cycles: {result.cycles:,}   instructions: "
        f"{result.committed:,}   IPC: {result.ipc:.2f}",
        "commit states: "
        + "  ".join(
            f"{state.name.lower()} "
            f"{result.state_cycles.get(state, 0) / result.cycles:.1%}"
            for state in CommitState
        ),
        f"flushes: {result.flushes.mispredicts} mispredicts, "
        f"{result.flushes.serial} serializing, "
        f"{result.flushes.ordering} ordering",
        f"branch mispredict rate: "
        f"{result.predictor.stats.mispredict_rate:.2%} "
        f"({result.predictor.stats.branches:,} branches)",
        f"L1I: {h.l1i.stats.accesses:,} accesses, miss rate "
        f"{h.l1i.stats.miss_rate:.2%}",
        f"L1D: {h.l1d.stats.accesses:,} accesses, miss rate "
        f"{h.l1d.stats.miss_rate:.2%}, "
        f"{h.l1d.stats.writebacks:,} writebacks, "
        f"{h.l1d.stats.prefetch_fills:,} prefetch fills",
        f"LLC: {h.llc.stats.accesses:,} accesses, miss rate "
        f"{h.llc.stats.miss_rate:.2%}",
        f"D-TLB: miss rate {h.dtlb.stats.miss_rate:.2%}, "
        f"{h.dtlb.stats.walks:,} walks   "
        f"I-TLB: miss rate {h.itlb.stats.miss_rate:.2%}",
        f"DRAM: {h.dram.stats.reads:,} line reads, "
        f"{h.dram.stats.writes:,} line writes, avg queue "
        f"{h.dram.stats.avg_queue_delay:.1f} cycles",
        f"evented executions: {_rate(result.evented_execs, result.committed)}"
        f" of commits; combined share of evented: "
        f"{result.combined_event_fraction():.1%}",
    ]
    return "\n".join(lines)
