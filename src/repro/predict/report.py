"""Rendering and validation of prediction / refine reports.

Two document schemas leave this package:

* ``tea-predict-v1`` -- the static analysis result: per-block bounds,
  binding bottleneck, predicted CPI, commit-state decomposition.
* ``tea-refine-v1`` -- the CounterPoint-style comparison: per-block
  predicted vs measured CPI plus structured refutations.

The validators work on plain dicts so CI and tests can check artifacts
without constructing analyzer objects (and without this module ever
importing the simulator).
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.predict.analyzer import (
    Bound,
    ProgramPrediction,
)

PREDICT_SCHEMA = "tea-predict-v1"
REFINE_SCHEMA = "tea-refine-v1"

#: Bound kinds a valid document may carry.
BOUND_KINDS = (
    "throughput",
    "latency",
    "capacity",
    "commit",
    "frontend",
    "flush",
)


def _bound_to_json(bound: Bound) -> dict[str, Any]:
    return {
        "name": bound.name,
        "kind": bound.kind,
        "cycles": bound.cycles,
        "detail": bound.detail,
        "insts": list(bound.insts),
    }


def prediction_to_json(pred: ProgramPrediction) -> dict[str, Any]:
    """Serialize a :class:`ProgramPrediction` to the v1 document."""
    config = pred.model.config
    blocks = []
    for block in pred.blocks.values():
        blocks.append(
            {
                "leader": block.leader,
                "end": block.end,
                "function": block.function,
                "size": block.size,
                "is_loop": block.is_loop,
                "cycles": block.cycles,
                "cpi": block.cpi,
                "binding": _bound_to_json(block.binding),
                "bounds": [_bound_to_json(b) for b in block.bounds],
                "queue_pressure": dict(block.queue_pressure),
                "critical_path": block.critical_path,
                "recurrence": block.recurrence,
                "states": dict(block.states),
            }
        )
    return {
        "schema": PREDICT_SCHEMA,
        "program": pred.program.name,
        "config": {
            "commit_width": config.commit_width,
            "decode_width": config.decode_width,
            "issue_width": dict(config.issue_width),
            "rob_entries": config.rob_entries,
            "l1d_latency": config.memory.l1d_latency,
        },
        "blocks": blocks,
        "summary": {
            "n_blocks": len(blocks),
            "weighted_cpi": pred.weighted_cpi,
            "bottlenecks": pred.bottlenecks,
        },
    }


def render_prediction(pred: ProgramPrediction, top: int = 0) -> str:
    """Human-readable table of the per-block predictions.

    Args:
        pred: The prediction to render.
        top: Show only the *top* largest-cycle blocks (0 = all).
    """
    program = pred.program
    blocks = sorted(
        pred.blocks.values(), key=lambda b: (-b.cycles, b.leader)
    )
    if top > 0:
        blocks = blocks[:top]
    lines = [
        f"{pred.program.name}: {len(pred.blocks)} block(s), "
        f"size-weighted CPI {pred.weighted_cpi:.2f}",
        f"{'block':>7} {'fn':<12} {'n':>3} {'loop':>4} "
        f"{'cyc/pass':>8} {'cpi':>6}  binding",
    ]
    for block in blocks:
        loop = "yes" if block.is_loop else "-"
        culprits = ", ".join(
            program[i].disasm() for i in block.binding.insts[:3]
        )
        if len(block.binding.insts) > 3:
            culprits += ", ..."
        lines.append(
            f"{block.leader:>7} {block.function[:12]:<12} "
            f"{block.size:>3} {loop:>4} {block.cycles:>8.2f} "
            f"{block.cpi:>6.2f}  {block.binding.name} "
            f"({block.binding.detail})"
        )
        if culprits:
            lines.append(f"{'':>7} {'':<12} {'':>3} {'':>4} "
                         f"{'':>8} {'':>6}  `- {culprits}")
    hist = ", ".join(
        f"{kind}: {count}" for kind, count in pred.bottlenecks.items()
    )
    lines.append(f"bottlenecks: {hist}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Document validation (plain dicts; used by CI and tests).
# ----------------------------------------------------------------------
def _fail(path: str, message: str) -> None:
    raise ValueError(f"invalid report at {path}: {message}")


def _check_number(doc: dict, key: str, path: str) -> None:
    value = doc.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(f"{path}.{key}", f"expected a number, got {value!r}")
    if not math.isfinite(value) or value < 0:
        _fail(f"{path}.{key}", f"expected a finite value >= 0, got {value}")


def _check_bound(bound: Any, path: str) -> None:
    if not isinstance(bound, dict):
        _fail(path, "expected a bound object")
    for key in ("name", "kind", "detail"):
        if not isinstance(bound.get(key), str) or not bound[key]:
            _fail(f"{path}.{key}", "expected a non-empty string")
    if bound["kind"] not in BOUND_KINDS:
        _fail(f"{path}.kind", f"unknown bound kind {bound['kind']!r}")
    _check_number(bound, "cycles", path)
    if not isinstance(bound.get("insts"), list):
        _fail(f"{path}.insts", "expected a list of indices")


def validate_prediction_doc(doc: dict[str, Any]) -> dict[str, Any]:
    """Validate a ``tea-predict-v1`` document; returns it unchanged.

    Every block must carry a non-empty bound set, a binding
    bottleneck, and finite non-negative cycle counts -- the CI smoke
    gate's definition of "every block gets a bound + bottleneck".

    Raises:
        ValueError: Describing the first problem found.
    """
    if doc.get("schema") != PREDICT_SCHEMA:
        _fail("schema", f"expected {PREDICT_SCHEMA!r}")
    blocks = doc.get("blocks")
    if not isinstance(blocks, list) or not blocks:
        _fail("blocks", "expected a non-empty list")
    for i, block in enumerate(blocks):
        path = f"blocks[{i}]"
        if not isinstance(block, dict):
            _fail(path, "expected a block object")
        for key in ("cycles", "cpi", "critical_path", "recurrence"):
            _check_number(block, key, path)
        if not isinstance(block.get("size"), int) or block["size"] < 1:
            _fail(f"{path}.size", "expected a positive instruction count")
        bounds = block.get("bounds")
        if not isinstance(bounds, list) or not bounds:
            _fail(f"{path}.bounds", "expected a non-empty bound list")
        for j, bound in enumerate(bounds):
            _check_bound(bound, f"{path}.bounds[{j}]")
        _check_bound(block.get("binding"), f"{path}.binding")
        states = block.get("states")
        if not isinstance(states, dict) or not states:
            _fail(f"{path}.states", "expected a state decomposition")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        _fail("summary", "expected a summary object")
    _check_number(summary, "weighted_cpi", "summary")
    if summary.get("n_blocks") != len(blocks):
        _fail("summary.n_blocks", "does not match the block list")
    return doc


def validate_refine_doc(doc: dict[str, Any]) -> dict[str, Any]:
    """Validate a ``tea-refine-v1`` document; returns it unchanged.

    Raises:
        ValueError: Describing the first problem found.
    """
    if doc.get("schema") != REFINE_SCHEMA:
        _fail("schema", f"expected {REFINE_SCHEMA!r}")
    for key in ("workload", "spec_key"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            _fail(key, "expected a non-empty string")
    _check_number(doc, "threshold", "")
    _check_number(doc, "min_share", "")
    comparisons = doc.get("blocks")
    if not isinstance(comparisons, list) or not comparisons:
        _fail("blocks", "expected a non-empty comparison list")
    for i, row in enumerate(comparisons):
        path = f"blocks[{i}]"
        if not isinstance(row, dict):
            _fail(path, "expected a comparison object")
        for key in ("predicted_cpi", "share"):
            _check_number(row, key, path)
        if not isinstance(row.get("refuted"), bool):
            _fail(f"{path}.refuted", "expected a boolean")
    refutations = doc.get("refutations")
    if not isinstance(refutations, list):
        _fail("refutations", "expected a list")
    for i, ref in enumerate(refutations):
        path = f"refutations[{i}]"
        if not isinstance(ref, dict):
            _fail(path, "expected a refutation object")
        for key in ("assumption", "message"):
            if not isinstance(ref.get(key), str) or not ref[key]:
                _fail(f"{path}.{key}", "expected a non-empty string")
        if not isinstance(ref.get("evidence"), dict):
            _fail(f"{path}.evidence", "expected an evidence object")
    if not isinstance(doc.get("ok"), bool):
        _fail("ok", "expected a boolean")
    if doc["ok"] != (len(refutations) == 0):
        _fail("ok", "inconsistent with the refutation list")
    return doc


def dump_report(doc: dict[str, Any]) -> str:
    """Canonical JSON text for a report document."""
    return json.dumps(doc, indent=2, sort_keys=False)
