"""Analytical throughput prediction over ISA programs (no simulation).

The OSACA-style static tier of ROADMAP item 3: decompose a
:class:`~repro.isa.program.Program` into basic blocks, classify every
instruction into the issue queue / latency model that
:class:`~repro.uarch.config.CoreConfig` implies, build intra- and
loop-carried dependency graphs, and report per-block and whole-program
throughput / latency / capacity bounds with a binding bottleneck --
without executing a single simulated cycle.

``repro.predict.refine`` layers the CounterPoint-style escalation tier
on top: it runs the detailed cycle model (through the engine/store, so
warm comparisons are free) and emits structured *refutations* where the
analytical assumptions break. It is the only module of this package
allowed to touch the simulator; everything else is simulation-free by
construction, enforced by tea-lint rule TL008 (``predict-purity``).
"""

from repro.predict.analyzer import (
    BlockPrediction,
    Bound,
    ProgramPrediction,
    predict_program,
)
from repro.predict.depgraph import BlockDepGraph, DepEdge
from repro.predict.ports import InstCost, PortModel
from repro.predict.report import (
    prediction_to_json,
    render_prediction,
    validate_prediction_doc,
    validate_refine_doc,
)

__all__ = [
    "BlockDepGraph",
    "BlockPrediction",
    "Bound",
    "DepEdge",
    "InstCost",
    "PortModel",
    "ProgramPrediction",
    "predict_program",
    "prediction_to_json",
    "render_prediction",
    "validate_prediction_doc",
    "validate_refine_doc",
]
