"""Per-block analytical bounds and the whole-program prediction.

For every basic block the analyzer computes three bound families and
declares the largest one *binding*:

* **throughput** -- issue-bandwidth pressure per queue (int/mem/fp)
  plus the commit and front-end pseudo-queues;
* **latency** -- the loop recurrence for self-loop blocks, the
  critical path for straight-line blocks, and the exposed pipeline
  refill after serializing instructions;
* **capacity** -- cycles forced by finite ROB/issue-queue/LSQ windows
  when the latency chain is long enough that full overlap would need
  more in-flight instructions than the core can hold.

All bounds are cycles *per block execution*; dividing by the block
size gives the predicted CPI. The whole-program summary weighs blocks
by instruction count only -- static analysis has no trip counts, a
documented bias the refine loop measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import CONTROL_OPS, OpClass
from repro.isa.program import Program
from repro.uarch.config import CoreConfig
from repro.predict.depgraph import BlockDepGraph
from repro.predict.ports import COMMIT, FRONTEND, PortModel

#: Commit-state vocabulary keys (matches ``CommitState`` names).
STATE_KEYS = ("compute", "stalled", "drained", "flushed")


@dataclass(frozen=True)
class Bound:
    """One analytical bound on a block's execution time.

    Attributes:
        name: Unique bound name, e.g. ``"throughput:mem"``.
        kind: Bound family: ``"throughput"``, ``"latency"``,
            ``"capacity"``, ``"commit"``, ``"frontend"``, ``"flush"``.
        cycles: Cycles per block execution this bound enforces.
        detail: Human-readable justification.
        insts: Program indices of the implicated instructions.
    """

    name: str
    kind: str
    cycles: float
    detail: str
    insts: tuple[int, ...] = ()


@dataclass
class BlockPrediction:
    """Analytical prediction for one basic block.

    Attributes:
        leader: Leader instruction index (the block id).
        end: One past the last instruction index.
        function: Enclosing function name.
        size: Instruction count.
        is_loop: True when the block branches back to its own leader.
        bounds: Every computed bound, in evaluation order.
        binding: The bound with the largest cycle count.
        cycles: Predicted cycles per block execution (= binding).
        cpi: Predicted CPI (= cycles / size).
        queue_pressure: Issue pressure per queue, cycles per pass.
        critical_path: Intra-iteration latency chain, cycles.
        recurrence: Loop-carried recurrence, cycles (0 if none).
        states: Predicted commit-state decomposition of *cycles*,
            keyed by the PICS vocabulary (compute / stalled / drained
            / flushed) -- what the refine loop diffs against measured
            cycle stacks.
    """

    leader: int
    end: int
    function: str
    size: int
    is_loop: bool
    bounds: tuple[Bound, ...]
    binding: Bound
    cycles: float
    cpi: float
    queue_pressure: dict[str, float]
    critical_path: float
    recurrence: float
    states: dict[str, float] = field(default_factory=dict)


@dataclass
class ProgramPrediction:
    """Whole-program analytical prediction.

    Attributes:
        program: The analyzed program (kept for rendering/grouping).
        model: The port model the bounds were derived from.
        blocks: Per-block predictions keyed by leader index.
    """

    program: Program
    model: PortModel
    blocks: dict[int, BlockPrediction]

    def block_of(self, index: int) -> BlockPrediction:
        """Prediction for the block containing instruction *index*."""
        return self.blocks[self.program.bb_of(index)]

    @property
    def weighted_cpi(self) -> float:
        """Size-weighted mean predicted CPI over all blocks.

        Static analysis has no trip counts, so every block weighs by
        its instruction count; loop-heavy programs will differ from
        the measured whole-program CPI (known bias).
        """
        total_insts = sum(b.size for b in self.blocks.values())
        total_cycles = sum(b.cycles for b in self.blocks.values())
        return total_cycles / total_insts if total_insts else 0.0

    @property
    def bottlenecks(self) -> dict[str, int]:
        """Histogram of binding-bound kinds over all blocks."""
        hist: dict[str, int] = {}
        for block in self.blocks.values():
            hist[block.binding.kind] = hist.get(block.binding.kind, 0) + 1
        return dict(sorted(hist.items()))


def _block_extents(program: Program) -> list[tuple[int, int]]:
    """``(leader, end)`` extents of every basic block, in order."""
    extents: list[tuple[int, int]] = []
    for pos, leader in enumerate(program.basic_blocks):
        if not extents or extents[-1][0] != leader:
            extents.append((leader, pos + 1))
        else:
            extents[-1] = (leader, pos + 1)
    return extents


def _is_self_loop(program: Program, leader: int, end: int) -> bool:
    """True when the block's terminator jumps back to its own leader."""
    last = program[end - 1]
    return last.op in CONTROL_OPS and last.target == leader


def _predict_block(
    program: Program,
    model: PortModel,
    leader: int,
    end: int,
) -> BlockPrediction:
    insts = program.insts[leader:end]
    costs = model.block_costs(insts)
    is_loop = _is_self_loop(program, leader, end)
    graph = BlockDepGraph.build(insts, costs, loop=is_loop)
    pressure = model.queue_pressure(costs)
    cp_cycles, cp_chain = graph.critical_path()
    rec_cycles, rec_chain = graph.recurrence()
    config = model.config
    n = len(insts)

    bounds: list[Bound] = []
    for queue in ("int", "mem", "fp"):
        if queue not in pressure:
            continue
        members = tuple(c.index for c in costs if c.queue == queue)
        bounds.append(
            Bound(
                name=f"throughput:{queue}",
                kind="throughput",
                cycles=pressure[queue],
                detail=(
                    f"{len(members)} op(s) over the {queue} queue's "
                    f"issue width of {config.issue_width[queue]}"
                ),
                insts=members,
            )
        )

    if is_loop and rec_cycles > 0:
        bounds.append(
            Bound(
                name="latency:recurrence",
                kind="latency",
                cycles=rec_cycles,
                detail=(
                    "loop-carried dependency chain of "
                    f"{len(rec_chain)} op(s)"
                ),
                insts=tuple(leader + pos for pos in rec_chain),
            )
        )
    elif not is_loop:
        bounds.append(
            Bound(
                name="latency:critical-path",
                kind="latency",
                cycles=cp_cycles,
                detail=(
                    f"critical path of {len(cp_chain)} op(s) with no "
                    "self-overlap"
                ),
                insts=tuple(leader + pos for pos in cp_chain),
            )
        )

    serial = tuple(
        c.index for c in costs if c.op_class is OpClass.SERIAL
    )
    if serial:
        refill = config.redirect_penalty + config.frontend_depth
        bounds.append(
            Bound(
                name="flush:serial",
                kind="flush",
                cycles=pressure[COMMIT] + len(serial) * refill,
                detail=(
                    f"{len(serial)} serializing op(s), each exposing a "
                    f"{refill}-cycle pipeline refill"
                ),
                insts=serial,
            )
        )

    all_insts = tuple(range(leader, end))
    bounds.append(
        Bound(
            name="commit",
            kind="commit",
            cycles=pressure[COMMIT],
            detail=f"{n} op(s) over commit width {config.commit_width}",
            insts=all_insts,
        )
    )
    bounds.append(
        Bound(
            name="frontend",
            kind="frontend",
            cycles=pressure[FRONTEND],
            detail=f"{n} op(s) over decode width {config.decode_width}",
            insts=all_insts,
        )
    )

    # Capacity: sustaining one block pass per `window` cycles needs
    # `occupancy * n / window` in-flight slots; inverted, a resource
    # with R slots forces at least occupancy * count / R cycles.
    occupancy = max(cp_cycles, rec_cycles)
    loads = tuple(
        c.index for c in costs if c.op_class is OpClass.LOAD
    )
    stores = tuple(
        c.index for c in costs if c.op_class is OpClass.STORE
    )
    for name, count, slots, members in (
        ("rob", n, config.rob_entries, all_insts),
        ("lq", len(loads), config.load_queue_entries, loads),
        ("sq", len(stores), config.store_queue_entries, stores),
    ):
        if count == 0 or slots <= 0:
            continue
        bounds.append(
            Bound(
                name=f"capacity:{name}",
                kind="capacity",
                cycles=occupancy * count / slots,
                detail=(
                    f"{count} op(s) occupying the {slots}-entry "
                    f"{name} for ~{occupancy:.0f} cycles"
                ),
                insts=members,
            )
        )

    binding = max(bounds, key=lambda b: b.cycles)
    cycles = binding.cycles
    compute = min(cycles, pressure[COMMIT])
    flushed = (
        cycles - compute if binding.kind == "flush" else 0.0
    )
    drained = (
        cycles - compute if binding.kind == "frontend" else 0.0
    )
    stalled = max(0.0, cycles - compute - flushed - drained)
    states = {
        "compute": compute,
        "stalled": stalled,
        "drained": drained,
        "flushed": flushed,
    }

    return BlockPrediction(
        leader=leader,
        end=end,
        function=program.func_of(leader),
        size=n,
        is_loop=is_loop,
        bounds=tuple(bounds),
        binding=binding,
        cycles=cycles,
        cpi=cycles / n,
        queue_pressure=pressure,
        critical_path=cp_cycles,
        recurrence=rec_cycles,
        states=states,
    )


def predict_program(
    program: Program,
    config: CoreConfig | None = None,
    model: PortModel | None = None,
) -> ProgramPrediction:
    """Statically predict every basic block of *program*.

    Args:
        program: The assembled program to analyze.
        config: Core configuration; defaults to the paper baseline.
            Ignored when *model* is given.
        model: An explicit :class:`PortModel` (e.g. a sabotaged one).

    Returns:
        A :class:`ProgramPrediction` with one entry per basic block;
        every block gets a full bound set and a binding bottleneck.
    """
    if model is None:
        model = PortModel(config) if config is not None else PortModel()
    blocks = {
        leader: _predict_block(program, model, leader, end)
        for leader, end in _block_extents(program)
    }
    return ProgramPrediction(program=program, model=model, blocks=blocks)
