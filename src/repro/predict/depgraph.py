"""Register dependency graphs over one basic block.

Two edge families matter for the analytical bounds:

* *intra-iteration* edges -- a consumer reads a register whose latest
  writer sits earlier in the same block. These bound one pass through
  the block (the critical path).
* *loop-carried* edges -- for self-loop blocks only: a consumer reads a
  register whose only writer in the block sits at or after it, i.e.
  the value arrives from the previous iteration. Distance-1 cycles
  through these edges bound the steady-state iteration time (the
  recurrence), exactly the ``LCD`` of OSACA-style analysis.

Registers are tracked by their encoded numbers; ``x0`` is hard-wired
zero, so reads of it never depend on anything and writes to it produce
nothing. Memory-carried dependencies (store-to-load through the same
address) are *not* modelled -- a documented bias the refine loop can
surface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import NO_REG, StaticInst
from repro.predict.ports import InstCost

#: Encoded register number of the hard-wired zero register.
ZERO_REG = 0


@dataclass(frozen=True)
class DepEdge:
    """One register dependency between two block positions.

    Attributes:
        src: Block-local position of the producer.
        dst: Block-local position of the consumer.
        reg: Encoded register carrying the value.
        loop_carried: True when the value crosses an iteration
            boundary (producer position >= consumer position).
    """

    src: int
    dst: int
    reg: int
    loop_carried: bool


@dataclass
class BlockDepGraph:
    """Dependency structure of one basic block.

    Attributes:
        insts: The block's instructions, in program order.
        costs: Matching :class:`InstCost` per instruction.
        edges: All register dependency edges.
    """

    insts: tuple[StaticInst, ...]
    costs: tuple[InstCost, ...]
    edges: tuple[DepEdge, ...]

    @classmethod
    def build(
        cls,
        insts: tuple[StaticInst, ...],
        costs: tuple[InstCost, ...],
        loop: bool,
    ) -> BlockDepGraph:
        """Build the graph for a block; *loop* enables carried edges."""
        last_writer: dict[int, int] = {}
        any_writer: dict[int, int] = {}
        for pos, inst in enumerate(insts):
            if inst.rd not in (NO_REG, ZERO_REG):
                any_writer[inst.rd] = pos  # latest wins
        edges: list[DepEdge] = []
        for pos, inst in enumerate(insts):
            for reg in inst.sources():
                if reg == ZERO_REG:
                    continue
                if reg in last_writer:
                    edges.append(
                        DepEdge(last_writer[reg], pos, reg, False)
                    )
                elif loop and reg in any_writer:
                    # No writer before this read: the value is the
                    # previous iteration's (written at or after pos).
                    edges.append(
                        DepEdge(any_writer[reg], pos, reg, True)
                    )
            if inst.rd not in (NO_REG, ZERO_REG):
                last_writer[inst.rd] = pos
        return cls(insts=insts, costs=costs, edges=tuple(edges))

    # ------------------------------------------------------------------
    # Bounds.
    # ------------------------------------------------------------------
    def _intra_preds(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {}
        for edge in self.edges:
            if not edge.loop_carried:
                preds.setdefault(edge.dst, []).append(edge.src)
        return preds

    def critical_path(self) -> tuple[float, tuple[int, ...]]:
        """Longest latency chain through one pass of the block.

        Returns:
            ``(cycles, chain)`` where *chain* is the block-local
            positions on the path, in program order. Completion-time
            semantics: the chain length is the sum of the producer
            latencies plus the final consumer's own latency.
        """
        preds = self._intra_preds()
        finish: list[float] = []
        best_pred: list[int | None] = []
        for pos in range(len(self.insts)):
            lat = float(self.costs[pos].latency)
            start, chosen = 0.0, None
            for p in preds.get(pos, ()):
                if finish[p] > start:
                    start, chosen = finish[p], p
            finish.append(start + lat)
            best_pred.append(chosen)
        if not finish:
            return 0.0, ()
        end = max(range(len(finish)), key=lambda i: finish[i])
        chain: list[int] = []
        node: int | None = end
        while node is not None:
            chain.append(node)
            node = best_pred[node]
        return finish[end], tuple(reversed(chain))

    def recurrence(self) -> tuple[float, tuple[int, ...]]:
        """Longest distance-1 dependency cycle, in cycles per iteration.

        For every loop-carried edge ``u -> v`` the cycle closes through
        the longest intra-iteration path ``v -> u``; its per-iteration
        cost is the sum of every node latency on ``v..u`` inclusive.
        Loop-carried edges with no intra path back (dependence chains
        spanning several iterations) do not form a distance-1 cycle
        and are ignored.

        Returns:
            ``(cycles, chain)``; ``(0.0, ())`` when no cycle exists.
        """
        preds = self._intra_preds()
        best, best_chain = 0.0, ()
        for edge in self.edges:
            if not edge.loop_carried:
                continue
            u, v = edge.src, edge.dst
            if u == v:
                length = float(self.costs[u].latency)
                chain: tuple[int, ...] = (u,)
            else:
                # acc[w]: max latency sum over intra paths v..w,
                # counting every node strictly before w. Positions are
                # already a topological order (intra edges go forward).
                acc: dict[int, float] = {v: 0.0}
                back: dict[int, int] = {}
                for w in range(v + 1, len(self.insts)):
                    for p in preds.get(w, ()):
                        if p not in acc:
                            continue
                        cand = acc[p] + float(self.costs[p].latency)
                        if w not in acc or cand > acc[w]:
                            acc[w], back[w] = cand, p
                if u not in acc:
                    continue
                length = acc[u] + float(self.costs[u].latency)
                nodes = [u]
                while nodes[-1] in back:
                    nodes.append(back[nodes[-1]])
                if nodes[-1] != v:
                    nodes.append(v)
                chain = tuple(reversed(nodes))
            if length > best:
                best, best_chain = length, chain
        return best, best_chain
