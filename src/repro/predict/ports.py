"""Static port/queue mapping derived from :class:`CoreConfig`.

The :class:`PortModel` answers, for one static instruction, the three
questions the analytical bounds need: which issue queue serves it, how
many cycles its result takes (the *latency* a dependent must wait), and
how much issue bandwidth it consumes (the *reciprocal throughput*).
Everything is read off the core configuration -- issue widths, the
per-class latency table, the unpipelined set -- plus one memory-system
assumption: loads hit the L1 and take the configured load-to-use
latency. That assumption is exactly what the refine loop later tries
to refute.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.isa.instructions import StaticInst
from repro.isa.opcodes import OpClass
from repro.uarch.config import CoreConfig

#: Pseudo-queues shared by every instruction regardless of class.
COMMIT = "commit"
FRONTEND = "frontend"


@dataclass(frozen=True)
class InstCost:
    """Static cost model of one instruction.

    Attributes:
        index: Program index of the instruction.
        op_class: Operation class the cost was derived from.
        queue: Issue queue ("int" / "mem" / "fp") serving the class.
        latency: Result latency in cycles (what a dependent waits).
        recip_throughput: Issue-bandwidth cost in cycles: ``1/width``
            for pipelined classes, ``latency/width`` for unpipelined
            ones (the unit is busy for the full latency).
        unpipelined: True when the class blocks its unit end-to-end.
    """

    index: int
    op_class: OpClass
    queue: str
    latency: int
    recip_throughput: float
    unpipelined: bool


@dataclass
class PortModel:
    """Queue/latency/throughput model read off a core configuration.

    Args:
        config: Core parameters; defaults to the paper baseline.
        latency_override: Per-class latency replacements, applied on
            top of ``config.latencies``. Used by tests and the refine
            acceptance check to inject a *sabotaged* FU table.
    """

    config: CoreConfig = field(default_factory=CoreConfig)
    latency_override: dict[OpClass, int] = field(default_factory=dict)

    def latency_of(self, op_class: OpClass) -> int:
        """Result latency for *op_class* under this model.

        Loads are not in the config latency table (their latency is a
        memory-system outcome); the static model assumes the L1 hit
        load-to-use latency.
        """
        if op_class in self.latency_override:
            return self.latency_override[op_class]
        if op_class is OpClass.LOAD:
            return self.config.memory.l1d_latency
        return self.config.latencies.get(op_class, 1)

    def cost(self, inst: StaticInst) -> InstCost:
        """Classify one static instruction into its port mapping."""
        op_class = inst.op_class
        queue = self.config.queue_of(op_class)
        latency = self.latency_of(op_class)
        unpipelined = op_class in self.config.unpipelined
        width = self.config.issue_width[queue]
        recip = (latency if unpipelined else 1) / width
        return InstCost(
            index=inst.index,
            op_class=op_class,
            queue=queue,
            latency=latency,
            recip_throughput=recip,
            unpipelined=unpipelined,
        )

    def block_costs(
        self, insts: tuple[StaticInst, ...]
    ) -> tuple[InstCost, ...]:
        """Costs for every instruction of a block, in program order."""
        return tuple(self.cost(inst) for inst in insts)

    def queue_pressure(
        self, costs: tuple[InstCost, ...]
    ) -> dict[str, float]:
        """Cycles of issue bandwidth each queue spends per block pass.

        Also reports the ``commit`` and ``frontend`` pseudo-queues:
        every instruction costs ``1/commit_width`` at retirement and
        ``1/decode_width`` in the front end.
        """
        pressure: dict[str, float] = {}
        for cost in costs:
            pressure[cost.queue] = (
                pressure.get(cost.queue, 0.0) + cost.recip_throughput
            )
        n = len(costs)
        pressure[COMMIT] = n / self.config.commit_width
        pressure[FRONTEND] = n / self.config.decode_width
        return pressure

    def sabotage(self, overrides: dict[OpClass, int]) -> PortModel:
        """A copy of this model with *overrides* patched into it.

        The refine acceptance criterion needs a deliberately wrong FU
        latency table; this keeps the mutation explicit and the
        original model intact.
        """
        merged = dict(self.latency_override)
        merged.update(overrides)
        return replace(self, latency_override=merged)
