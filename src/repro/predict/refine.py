"""CounterPoint-style refutation of the static prediction.

The static analyzer in :mod:`repro.predict.analyzer` rests on explicit
assumptions -- loads hit the L1, branches predict perfectly, the
front end keeps up, the FU latency table matches the core. This module
*tests* those assumptions: it runs the detailed cycle model through
the existing :class:`~repro.engine.engine.Engine` (so a warm
:class:`~repro.engine.store.RunStore` makes the comparison free),
folds the golden per-instruction cycle attribution to basic blocks via
:func:`repro.trace.query.group_attribution`, and diffs measured block
CPI against the prediction. Blocks whose error exceeds the threshold
become structured :class:`Refutation` records naming the assumption
that failed and the measured evidence (PSV event shares in the block's
cycle stack).

This is deliberately the **only** module of ``repro.predict`` allowed
to import the simulator; tea-lint rule TL008 enforces that split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.events import Event
from repro.engine import Engine, RunSpec
from repro.isa.program import Program
from repro.predict.analyzer import ProgramPrediction, predict_program
from repro.predict.ports import PortModel
from repro.predict.report import REFINE_SCHEMA
from repro.trace.query import group_attribution
from repro.uarch.config import CoreConfig

#: Default relative-CPI-error threshold for a refutation. Tuned so
#: the paper-baseline defaults hold on the compute-bound kernels (nab,
#: cactuBSSN, exchange2, gcc) while the memory-bound ones (mcf,
#: omnetpp, bwaves) correctly refute the L1-hit assumption.
DEFAULT_THRESHOLD = 0.6
#: Default minimum share of total cycles for a block to be judged.
DEFAULT_MIN_SHARE = 0.05
#: An event must explain at least this share of a block's cycles to be
#: named the failed assumption; below it the gap is blamed on the
#: port/latency tables themselves.
EVENT_DOMINANCE = 0.25

#: The analytical assumptions the refine loop can refute, with the
#: model statement each one stands for.
ASSUMPTIONS: dict[str, str] = {
    "loads-hit-l1": (
        "the static model prices every load at the L1 hit latency"
    ),
    "perfect-dtlb": (
        "the static model assumes data translations never miss"
    ),
    "perfect-branch-prediction": (
        "the static model assumes no branch ever mispredicts"
    ),
    "no-serializing-flushes": (
        "the static model underestimates serializing-flush exposure"
    ),
    "no-memory-ordering-violations": (
        "the static model assumes loads never violate store ordering"
    ),
    "perfect-frontend": (
        "the static model assumes instruction fetch never starves "
        "the pipeline"
    ),
    "unbounded-store-queue": (
        "the static model assumes stores never stall dispatch"
    ),
    "port-latency-model": (
        "the port/latency tables themselves mispredict this block "
        "(the gap is not explained by any measured event)"
    ),
    "overlap-underestimated": (
        "the static model under-counts overlap across blocks or "
        "iterations (prediction exceeds measurement)"
    ),
}

#: Dominant measured event -> the assumption it refutes.
EVENT_ASSUMPTION: dict[Event, str] = {
    Event.ST_L1: "loads-hit-l1",
    Event.ST_LLC: "loads-hit-l1",
    Event.ST_TLB: "perfect-dtlb",
    Event.FL_MB: "perfect-branch-prediction",
    Event.FL_EX: "no-serializing-flushes",
    Event.FL_MO: "no-memory-ordering-violations",
    Event.DR_L1: "perfect-frontend",
    Event.DR_TLB: "perfect-frontend",
    Event.DR_SQ: "unbounded-store-queue",
}


@dataclass(frozen=True)
class Refutation:
    """One refuted analytical assumption, with measured evidence.

    Attributes:
        leader: Basic-block leader index the refutation concerns.
        function: Enclosing function name.
        assumption: Key into :data:`ASSUMPTIONS`.
        message: Human-readable statement of the failure.
        predicted_cpi: The static model's CPI for the block.
        measured_cpi: The cycle model's CPI for the block.
        rel_error: ``|measured - predicted| / measured``.
        share: The block's share of total measured cycles.
        binding: The static binding bound name that was wrong.
        evidence: Measured event shares of the block's cycle stack
            (event display name -> share), plus ``"base"`` for
            event-free cycles.
    """

    leader: int
    function: str
    assumption: str
    message: str
    predicted_cpi: float
    measured_cpi: float
    rel_error: float
    share: float
    binding: str
    evidence: dict[str, float]


@dataclass
class BlockComparison:
    """Prediction vs measurement for one basic block.

    ``measured_cpi`` is ``None`` for blocks that never committed an
    instruction (dead code at this scale); such blocks are never
    refuted.
    """

    leader: int
    function: str
    size: int
    predicted_cpi: float
    measured_cpi: float | None
    share: float
    binding: str
    predicted_states: dict[str, float]
    event_shares: dict[str, float]
    refuted: bool


@dataclass
class RefineReport:
    """The full refine result for one run spec."""

    workload: str
    spec_key: str
    threshold: float
    min_share: float
    total_cycles: int
    blocks: list[BlockComparison] = field(default_factory=list)
    refutations: list[Refutation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every judged block survived (no refutations)."""
        return not self.refutations

    def to_json(self) -> dict[str, Any]:
        """Serialize to the ``tea-refine-v1`` document."""
        return {
            "schema": REFINE_SCHEMA,
            "workload": self.workload,
            "spec_key": self.spec_key,
            "threshold": self.threshold,
            "min_share": self.min_share,
            "total_cycles": self.total_cycles,
            "ok": self.ok,
            "blocks": [
                {
                    "leader": row.leader,
                    "function": row.function,
                    "size": row.size,
                    "predicted_cpi": row.predicted_cpi,
                    "measured_cpi": row.measured_cpi,
                    "share": row.share,
                    "binding": row.binding,
                    "predicted_states": dict(row.predicted_states),
                    "event_shares": dict(row.event_shares),
                    "refuted": row.refuted,
                }
                for row in self.blocks
            ],
            "refutations": [
                {
                    "leader": ref.leader,
                    "function": ref.function,
                    "assumption": ref.assumption,
                    "message": ref.message,
                    "predicted_cpi": ref.predicted_cpi,
                    "measured_cpi": ref.measured_cpi,
                    "rel_error": ref.rel_error,
                    "share": ref.share,
                    "binding": ref.binding,
                    "evidence": dict(ref.evidence),
                }
                for ref in self.refutations
            ],
        }

    def render(self) -> str:
        """Human-readable refine summary."""
        lines = [
            f"{self.workload}: prediction vs cycle model over "
            f"{self.total_cycles} cycles "
            f"(threshold {self.threshold:g}, min share "
            f"{self.min_share:g})",
        ]
        judged = [b for b in self.blocks if b.measured_cpi is not None]
        lines.append(
            f"{'block':>7} {'fn':<12} {'share':>6} {'pred':>7} "
            f"{'meas':>7}  verdict"
        )
        for row in sorted(judged, key=lambda b: -b.share):
            verdict = "REFUTED" if row.refuted else "ok"
            lines.append(
                f"{row.leader:>7} {row.function[:12]:<12} "
                f"{row.share:>6.1%} {row.predicted_cpi:>7.2f} "
                f"{row.measured_cpi:>7.2f}  {verdict}"
            )
        if self.ok:
            lines.append(
                "no refutations: the static model holds within "
                "threshold on every significant block"
            )
        for ref in self.refutations:
            top = sorted(
                ref.evidence.items(), key=lambda kv: -kv[1]
            )[:3]
            shown = ", ".join(f"{k}={v:.1%}" for k, v in top if v > 0)
            lines.append(
                f"refuted @{ref.leader} ({ref.function}): "
                f"{ref.message}"
            )
            lines.append(
                f"    assumption: {ref.assumption} -- "
                f"{ASSUMPTIONS[ref.assumption]}"
            )
            lines.append(f"    evidence: {shown or 'none'}")
        return "\n".join(lines)


def _block_event_shares(
    raw: dict[tuple[int, int], float],
    program: Program,
    block_cycles: dict[int, float],
) -> dict[int, dict[str, float]]:
    """Per-block share of cycles carrying each PSV event bit.

    ``"base"`` collects event-free cycles (compute shares and stalls
    the core attributed without any event) -- a gap concentrated there
    points at the port/latency model, not a memory-system assumption.
    """
    acc: dict[int, dict[str, float]] = {}
    for (index, psv), cycles in raw.items():
        leader = program.bb_of(index)
        shares = acc.setdefault(leader, {})
        if psv == 0:
            shares["base"] = shares.get("base", 0.0) + cycles
        else:
            for event in Event:
                if psv & (1 << event):
                    key = event.display_name
                    shares[key] = shares.get(key, 0.0) + cycles
    for leader, shares in acc.items():
        total = block_cycles.get(leader, 0.0)
        if total > 0:
            for key in shares:
                shares[key] /= total
    return acc


def _classify(
    predicted: float,
    measured: float,
    evidence: dict[str, float],
) -> str:
    """Name the assumption a prediction gap refutes."""
    if predicted > measured:
        return "overlap-underestimated"
    best_event, best_share = None, 0.0
    for event in Event:
        share = evidence.get(event.display_name, 0.0)
        if share > best_share:
            best_event, best_share = event, share
    if best_event is not None and best_share >= EVENT_DOMINANCE:
        return EVENT_ASSUMPTION[best_event]
    return "port-latency-model"


def refine_spec(
    spec: RunSpec,
    engine: Engine | None = None,
    model: PortModel | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    min_share: float = DEFAULT_MIN_SHARE,
) -> RefineReport:
    """Diff the static prediction against the cycle model for *spec*.

    Args:
        spec: The run to compare against (served memo -> store ->
            simulate, so a warm store costs nothing).
        engine: Engine to serve the run; a fresh store-less one by
            default.
        model: Port model override -- pass a sabotaged model (see
            :meth:`PortModel.sabotage`) to test the refutation path.
        threshold: Relative CPI error above which a block refutes.
        min_share: Minimum share of total cycles for a block to be
            judged at all (tiny blocks are noise).

    Returns:
        A :class:`RefineReport` with one comparison per executed
        block and a refutation per failed assumption.
    """
    if engine is None:
        engine = Engine()
    run = engine.run(spec)
    program: Program = run.workload.program
    result = run.result
    config = spec.config if spec.config is not None else CoreConfig()
    if model is None:
        model = PortModel(config)
    prediction: ProgramPrediction = predict_program(program, model=model)

    raw = result.golden_raw
    block_cycles = group_attribution(raw, "bb", program)
    total_cycles = result.cycles or 1
    block_commits: dict[int, int] = {}
    for index, count in result.exec_counts.items():
        leader = program.bb_of(index)
        block_commits[leader] = block_commits.get(leader, 0) + count
    event_shares = _block_event_shares(raw, program, block_cycles)

    report = RefineReport(
        workload=spec.workload,
        spec_key=spec.key,
        threshold=threshold,
        min_share=min_share,
        total_cycles=result.cycles,
    )
    for leader, block in prediction.blocks.items():
        commits = block_commits.get(leader, 0)
        cycles = block_cycles.get(leader, 0.0)
        share = cycles / total_cycles
        evidence = event_shares.get(leader, {})
        measured_cpi = cycles / commits if commits else None
        refuted = False
        if measured_cpi is not None and share >= min_share:
            rel_error = (
                abs(measured_cpi - block.cpi) / measured_cpi
                if measured_cpi > 0
                else 0.0
            )
            if rel_error > threshold:
                refuted = True
                assumption = _classify(
                    block.cpi, measured_cpi, evidence
                )
                report.refutations.append(
                    Refutation(
                        leader=leader,
                        function=block.function,
                        assumption=assumption,
                        message=(
                            f"block @{leader} predicted "
                            f"{block.cpi:.2f} CPI "
                            f"({block.binding.name}) but measured "
                            f"{measured_cpi:.2f} "
                            f"({rel_error:.0%} off, "
                            f"{share:.1%} of cycles)"
                        ),
                        predicted_cpi=block.cpi,
                        measured_cpi=measured_cpi,
                        rel_error=rel_error,
                        share=share,
                        binding=block.binding.name,
                        evidence=dict(evidence),
                    )
                )
        report.blocks.append(
            BlockComparison(
                leader=leader,
                function=block.function,
                size=block.size,
                predicted_cpi=block.cpi,
                measured_cpi=measured_cpi,
                share=share,
                binding=block.binding.name,
                predicted_states=dict(block.states),
                event_shares=dict(evidence),
                refuted=refuted,
            )
        )
    return report
