"""Functional interpreter producing the committed dynamic instruction stream.

The timing model in :mod:`repro.uarch` is trace-driven: this interpreter
executes a program architecturally (register file + memory) and yields one
:class:`~repro.isa.instructions.DynInst` per committed instruction, carrying
the branch outcome and memory effective address the timing model needs.

Wrong-path execution is *not* produced here; the timing model models the
wrong-path penalty as a front-end stall (see DESIGN.md, "Known deviations").
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.isa.instructions import (
    FP_BASE,
    NO_REG,
    NUM_FP_REGS,
    NUM_INT_REGS,
    DynInst,
    StaticInst,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


class InterpreterError(RuntimeError):
    """Raised when functional execution cannot proceed or does not halt."""


class ArchState:
    """Architectural state: integer/fp register files and memory.

    Memory is a sparse ``dict`` of byte address to value. Workloads
    initialise arrays by writing to :attr:`memory` before execution. Reads
    of uninitialised addresses return 0 (integer) so pointer-free kernels
    need no setup.
    """

    def __init__(self) -> None:
        self.int_regs: list[int] = [0] * NUM_INT_REGS
        self.fp_regs: list[float] = [0.0] * NUM_FP_REGS
        self.memory: dict[int, float] = {}

    def read_reg(self, reg: int) -> float:
        """Read an encoded register (x0 always reads 0)."""
        if reg < FP_BASE:
            return self.int_regs[reg]
        return self.fp_regs[reg - FP_BASE]

    def write_reg(self, reg: int, value: float) -> None:
        """Write an encoded register (writes to x0 are discarded)."""
        if reg == NO_REG:
            return
        if reg < FP_BASE:
            if reg != 0:
                self.int_regs[reg] = int(value)
        else:
            self.fp_regs[reg - FP_BASE] = float(value)

    def read_mem(self, addr: int) -> float:
        """Read memory at a byte address (0 if uninitialised)."""
        return self.memory.get(addr, 0)

    def write_mem(self, addr: int, value: float) -> None:
        """Write memory at a byte address."""
        self.memory[addr] = value


class Interpreter:
    """Architecturally execute a :class:`~repro.isa.program.Program`.

    Args:
        program: The program to execute.
        state: Optional pre-initialised architectural state (workloads use
            this to set up arrays and pointer-chase permutations).
        max_insts: Safety bound on committed instructions; exceeded means
            the program diverged.
    """

    def __init__(
        self,
        program: Program,
        state: ArchState | None = None,
        max_insts: int = 50_000_000,
        compiled: bool = True,
    ) -> None:
        self.program = program
        self.state = state or ArchState()
        self.max_insts = max_insts
        self.halted = False
        self.inst_count = 0
        # Per-instruction closure specialization (see _compile_program).
        # False forces the interpreted path; the equivalence tests compare
        # the two streams instruction by instruction.
        self.compiled = compiled

    def run(self) -> Iterator[DynInst]:
        """Yield one :class:`DynInst` per committed instruction until HALT.

        Raises:
            InterpreterError: If ``max_insts`` is exceeded, a RET jumps out
                of range, or execution falls off the end of the program.
        """
        if self.compiled:
            return self._run_compiled()
        return self._run_interpreted()

    def _run_compiled(self) -> Iterator[DynInst]:
        """Drive execution through per-instruction compiled closures.

        Produces exactly the stream of :meth:`_run_interpreted` (the
        specializer bakes each instruction's register indices, immediate,
        and constant result tuple into a closure; anything it cannot prove
        exact falls back to :meth:`_execute` per instruction).
        """
        program = self.program
        handlers = _compile_program(program, self.state, self._execute)
        if handlers is None:
            # Seeded register state breaks the type invariant the
            # specializer relies on; run fully interpreted.
            return self._run_interpreted()
        return self._drive_compiled(handlers)

    def _drive_compiled(self, handlers) -> Iterator[DynInst]:
        program = self.program
        n_insts = len(program)
        insts = [program[i] for i in range(n_insts)]
        is_halt = [inst.op is Opcode.HALT for inst in insts]
        max_insts = self.max_insts
        pc = 0
        seq = 0
        while True:
            if pc >= n_insts or pc < 0:
                raise InterpreterError(
                    f"{program.name}: pc {pc} outside program"
                )
            if seq >= max_insts:
                raise InterpreterError(
                    f"{program.name}: exceeded {max_insts} committed "
                    "instructions without HALT"
                )
            next_pc, eff_addr, taken = handlers[pc]()
            yield DynInst(insts[pc], seq, eff_addr, taken, next_pc)
            seq += 1
            self.inst_count = seq
            if is_halt[pc]:
                self.halted = True
                return
            pc = next_pc

    def _run_interpreted(self) -> Iterator[DynInst]:
        state = self.state
        program = self.program
        pc = 0
        seq = 0
        n_insts = len(program)
        while True:
            if pc >= n_insts or pc < 0:
                raise InterpreterError(
                    f"{program.name}: pc {pc} outside program"
                )
            if seq >= self.max_insts:
                raise InterpreterError(
                    f"{program.name}: exceeded {self.max_insts} committed "
                    "instructions without HALT"
                )
            inst = program[pc]
            next_pc, eff_addr, taken = self._execute(inst, pc)
            dyn = DynInst(
                static=inst,
                seq=seq,
                eff_addr=eff_addr,
                taken=taken,
                next_index=next_pc,
            )
            yield dyn
            seq += 1
            self.inst_count = seq
            if inst.op == Opcode.HALT:
                self.halted = True
                return
            pc = next_pc

    def _execute(
        self, inst: StaticInst, pc: int
    ) -> tuple[int, int, bool]:
        """Execute one instruction; return (next_pc, eff_addr, taken)."""
        state = self.state
        op = inst.op
        next_pc = pc + 1
        eff_addr = -1
        taken = False

        # The chain is ordered by measured dynamic frequency over the
        # workload suite (ADDI alone is ~35% of committed instructions),
        # not by opcode grouping -- each test hits exactly one opcode, so
        # ordering is free.
        if op == Opcode.ADDI:
            state.write_reg(inst.rd, state.read_reg(inst.rs1) + inst.imm)
        elif op in (Opcode.LOAD, Opcode.FLOAD):
            eff_addr = int(state.read_reg(inst.rs1) + inst.imm)
            state.write_reg(inst.rd, state.read_mem(eff_addr))
        elif op == Opcode.BNE:
            taken = state.read_reg(inst.rs1) != state.read_reg(inst.rs2)
            if taken:
                next_pc = inst.target
        elif op == Opcode.ADD:
            state.write_reg(
                inst.rd, state.read_reg(inst.rs1) + state.read_reg(inst.rs2)
            )
        elif op == Opcode.FADD:
            state.write_reg(
                inst.rd, state.read_reg(inst.rs1) + state.read_reg(inst.rs2)
            )
        elif op == Opcode.FMUL:
            state.write_reg(
                inst.rd, state.read_reg(inst.rs1) * state.read_reg(inst.rs2)
            )
        elif op == Opcode.ANDI:
            state.write_reg(
                inst.rd, int(state.read_reg(inst.rs1)) & int(inst.imm)
            )
        elif op == Opcode.MUL:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1)) * int(state.read_reg(inst.rs2)),
            )
        elif op == Opcode.BEQ:
            taken = state.read_reg(inst.rs1) == state.read_reg(inst.rs2)
            if taken:
                next_pc = inst.target
        elif op in (Opcode.STORE, Opcode.FSTORE):
            eff_addr = int(state.read_reg(inst.rs1) + inst.imm)
            state.write_mem(eff_addr, state.read_reg(inst.rs2))
        elif op == Opcode.JUMP:
            taken = True
            next_pc = inst.target
        elif op == Opcode.NOP or op == Opcode.SERIAL:
            pass
        elif op == Opcode.SUB:
            state.write_reg(
                inst.rd, state.read_reg(inst.rs1) - state.read_reg(inst.rs2)
            )
        elif op == Opcode.AND_:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1)) & int(state.read_reg(inst.rs2)),
            )
        elif op == Opcode.OR_:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1)) | int(state.read_reg(inst.rs2)),
            )
        elif op == Opcode.XOR_:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1)) ^ int(state.read_reg(inst.rs2)),
            )
        elif op == Opcode.SLT:
            state.write_reg(
                inst.rd,
                1 if state.read_reg(inst.rs1) < state.read_reg(inst.rs2) else 0,
            )
        elif op == Opcode.SLL:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1))
                << (int(state.read_reg(inst.rs2)) & 63),
            )
        elif op == Opcode.SRL:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1))
                >> (int(state.read_reg(inst.rs2)) & 63),
            )
        elif op == Opcode.ORI:
            state.write_reg(
                inst.rd, int(state.read_reg(inst.rs1)) | int(inst.imm)
            )
        elif op == Opcode.XORI:
            state.write_reg(
                inst.rd, int(state.read_reg(inst.rs1)) ^ int(inst.imm)
            )
        elif op == Opcode.SLTI:
            state.write_reg(
                inst.rd, 1 if state.read_reg(inst.rs1) < inst.imm else 0
            )
        elif op == Opcode.LUI:
            state.write_reg(inst.rd, inst.imm)
        elif op == Opcode.DIV:
            divisor = int(state.read_reg(inst.rs2))
            dividend = int(state.read_reg(inst.rs1))
            state.write_reg(
                inst.rd, 0 if divisor == 0 else int(dividend / divisor)
            )
        elif op == Opcode.REM:
            divisor = int(state.read_reg(inst.rs2))
            dividend = int(state.read_reg(inst.rs1))
            state.write_reg(
                inst.rd,
                dividend if divisor == 0 else int(math.fmod(dividend, divisor)),
            )
        elif op == Opcode.FSUB:
            state.write_reg(
                inst.rd, state.read_reg(inst.rs1) - state.read_reg(inst.rs2)
            )
        elif op == Opcode.FDIV:
            divisor = state.read_reg(inst.rs2)
            state.write_reg(
                inst.rd,
                0.0 if divisor == 0 else state.read_reg(inst.rs1) / divisor,
            )
        elif op == Opcode.FSQRT:
            state.write_reg(inst.rd, math.sqrt(abs(state.read_reg(inst.rs1))))
        elif op == Opcode.FMIN:
            state.write_reg(
                inst.rd,
                min(state.read_reg(inst.rs1), state.read_reg(inst.rs2)),
            )
        elif op == Opcode.FMAX:
            state.write_reg(
                inst.rd,
                max(state.read_reg(inst.rs1), state.read_reg(inst.rs2)),
            )
        elif op == Opcode.FCVT:
            state.write_reg(inst.rd, float(state.read_reg(inst.rs1)))
        elif op == Opcode.FMV:
            state.write_reg(inst.rd, int(state.read_reg(inst.rs1)))
        elif op == Opcode.PREFETCH:
            eff_addr = int(state.read_reg(inst.rs1) + inst.imm)
        elif op == Opcode.BLT:
            taken = state.read_reg(inst.rs1) < state.read_reg(inst.rs2)
            if taken:
                next_pc = inst.target
        elif op == Opcode.BGE:
            taken = state.read_reg(inst.rs1) >= state.read_reg(inst.rs2)
            if taken:
                next_pc = inst.target
        elif op == Opcode.CALL:
            taken = True
            state.write_reg(inst.rd, pc + 1)
            next_pc = inst.target
        elif op == Opcode.RET:
            taken = True
            next_pc = int(state.read_reg(inst.rs1))
        elif op == Opcode.HALT:
            next_pc = pc
        else:  # pragma: no cover - exhaustive over Opcode
            raise InterpreterError(f"unimplemented opcode {op!r}")
        return next_pc, eff_addr, taken


# ----------------------------------------------------------------------
# Per-instruction specialization.
#
# _execute() pays, per committed instruction, a method call, an opcode
# dispatch chain, repeated StaticInst attribute reads, and read_reg/
# write_reg calls. All of that is static per instruction, so the hot
# opcodes compile to closures with register indices, immediates, and the
# constant part of the (next_pc, eff_addr, taken) result baked in.
#
# Exactness contract: a specialized closure elides an int()/float()
# conversion only where the register type invariant proves the value
# bit-identical -- int_regs hold ints and fp_regs hold floats.
# write_reg() preserves the invariant (it converts on store), every
# specialized store does too, and _compile_program() verifies it for the
# workload-seeded initial state, refusing to compile otherwise. Any
# opcode or operand-class combination not provably exact falls back to a
# closure around _execute() itself. The interpreted path is kept intact
# (Interpreter(compiled=False)) and the equivalence tests compare the
# two streams instruction by instruction.
# ----------------------------------------------------------------------
def _compile_program(program, state, fallback):
    """Compile *program* to per-pc closures, or None if state forbids it."""
    int_regs = state.int_regs
    fp_regs = state.fp_regs
    if not all(type(v) is int for v in int_regs):
        return None
    if not all(type(v) is float for v in fp_regs):
        return None
    memory = state.memory
    return [
        _compile_inst(program[i], i, int_regs, fp_regs, memory, fallback)
        for i in range(len(program))
    ]


def _compile_inst(inst, pc, int_regs, fp_regs, memory, fallback):
    """Build the execution closure for one static instruction."""
    op = inst.op
    rd = inst.rd
    rs1 = inst.rs1
    rs2 = inst.rs2
    imm = inst.imm
    target = inst.target
    nxt = pc + 1
    ret = (nxt, -1, False)

    int_rd = 0 < rd < FP_BASE
    fp_rd = rd >= FP_BASE
    no_rd = rd == NO_REG or rd == 0
    int_rs1 = 0 <= rs1 < FP_BASE
    int_rs2 = 0 <= rs2 < FP_BASE
    fp_rs1 = rs1 >= FP_BASE
    fp_rs2 = rs2 >= FP_BASE
    int_imm = type(imm) is int
    rdf = rd - FP_BASE
    r1f = rs1 - FP_BASE
    r2f = rs2 - FP_BASE

    if op is Opcode.ADDI and int_imm and int_rs1:
        if int_rd:
            def h():
                int_regs[rd] = int_regs[rs1] + imm
                return ret
            return h
        if fp_rd:
            def h():
                fp_regs[rdf] = float(int_regs[rs1] + imm)
                return ret
            return h
        if no_rd:
            return lambda: ret

    if op in (Opcode.LOAD, Opcode.FLOAD) and int_imm and int_rs1:
        if int_rd:
            def h():
                ea = int_regs[rs1] + imm
                int_regs[rd] = int(memory.get(ea, 0))
                return (nxt, ea, False)
            return h
        if fp_rd:
            def h():
                ea = int_regs[rs1] + imm
                fp_regs[rdf] = float(memory.get(ea, 0))
                return (nxt, ea, False)
            return h
        if no_rd:
            return lambda: (nxt, int_regs[rs1] + imm, False)

    if op in (Opcode.STORE, Opcode.FSTORE) and int_imm and int_rs1:
        if int_rs2:
            def h():
                ea = int_regs[rs1] + imm
                memory[ea] = int_regs[rs2]
                return (nxt, ea, False)
            return h
        if fp_rs2:
            def h():
                ea = int_regs[rs1] + imm
                memory[ea] = fp_regs[r2f]
                return (nxt, ea, False)
            return h

    if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        t_ret = (target, -1, True)
        if int_rs1 and int_rs2:
            regs1 = regs2 = int_regs
            i1, i2 = rs1, rs2
        elif fp_rs1 and fp_rs2:
            regs1 = regs2 = fp_regs
            i1, i2 = r1f, r2f
        elif int_rs1 and fp_rs2:
            regs1, regs2 = int_regs, fp_regs
            i1, i2 = rs1, r2f
        elif fp_rs1 and int_rs2:
            regs1, regs2 = fp_regs, int_regs
            i1, i2 = r1f, rs2
        else:
            regs1 = None
        if regs1 is not None:
            if op is Opcode.BEQ:
                def h():
                    return t_ret if regs1[i1] == regs2[i2] else ret
            elif op is Opcode.BNE:
                def h():
                    return t_ret if regs1[i1] != regs2[i2] else ret
            elif op is Opcode.BLT:
                def h():
                    return t_ret if regs1[i1] < regs2[i2] else ret
            else:
                def h():
                    return t_ret if regs1[i1] >= regs2[i2] else ret
            return h

    if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL):
        if no_rd:
            return lambda: ret
        if int_rd and int_rs1 and int_rs2:
            if op is Opcode.ADD:
                def h():
                    int_regs[rd] = int_regs[rs1] + int_regs[rs2]
                    return ret
            elif op is Opcode.SUB:
                def h():
                    int_regs[rd] = int_regs[rs1] - int_regs[rs2]
                    return ret
            else:
                def h():
                    int_regs[rd] = int_regs[rs1] * int_regs[rs2]
                    return ret
            return h
        if (
            fp_rd and fp_rs1 and fp_rs2
            and op in (Opcode.ADD, Opcode.SUB)
        ):
            if op is Opcode.ADD:
                def h():
                    fp_regs[rdf] = fp_regs[r1f] + fp_regs[r2f]
                    return ret
            else:
                def h():
                    fp_regs[rdf] = fp_regs[r1f] - fp_regs[r2f]
                    return ret
            return h

    if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL):
        if no_rd:
            return lambda: ret
        if fp_rd and fp_rs1 and fp_rs2:
            if op is Opcode.FADD:
                def h():
                    fp_regs[rdf] = fp_regs[r1f] + fp_regs[r2f]
                    return ret
            elif op is Opcode.FSUB:
                def h():
                    fp_regs[rdf] = fp_regs[r1f] - fp_regs[r2f]
                    return ret
            else:
                def h():
                    fp_regs[rdf] = fp_regs[r1f] * fp_regs[r2f]
                    return ret
            return h

    if (
        op in (Opcode.ANDI, Opcode.ORI, Opcode.XORI)
        and int_rd and int_rs1 and int_imm
    ):
        if op is Opcode.ANDI:
            def h():
                int_regs[rd] = int_regs[rs1] & imm
                return ret
        elif op is Opcode.ORI:
            def h():
                int_regs[rd] = int_regs[rs1] | imm
                return ret
        else:
            def h():
                int_regs[rd] = int_regs[rs1] ^ imm
                return ret
        return h

    if op is Opcode.SLTI and int_rd and int_rs1:
        def h():
            int_regs[rd] = 1 if int_regs[rs1] < imm else 0
            return ret
        return h

    if op is Opcode.LUI:
        if int_rd:
            val_i = int(imm)

            def h():
                int_regs[rd] = val_i
                return ret
            return h
        if fp_rd:
            val_f = float(imm)

            def h():
                fp_regs[rdf] = val_f
                return ret
            return h
        if no_rd:
            return lambda: ret

    if (
        op in (Opcode.AND_, Opcode.OR_, Opcode.XOR_, Opcode.SLT,
               Opcode.SLL, Opcode.SRL)
        and int_rd and int_rs1 and int_rs2
    ):
        if op is Opcode.AND_:
            def h():
                int_regs[rd] = int_regs[rs1] & int_regs[rs2]
                return ret
        elif op is Opcode.OR_:
            def h():
                int_regs[rd] = int_regs[rs1] | int_regs[rs2]
                return ret
        elif op is Opcode.XOR_:
            def h():
                int_regs[rd] = int_regs[rs1] ^ int_regs[rs2]
                return ret
        elif op is Opcode.SLT:
            def h():
                int_regs[rd] = 1 if int_regs[rs1] < int_regs[rs2] else 0
                return ret
        elif op is Opcode.SLL:
            def h():
                int_regs[rd] = int_regs[rs1] << (int_regs[rs2] & 63)
                return ret
        else:
            def h():
                int_regs[rd] = int_regs[rs1] >> (int_regs[rs2] & 63)
                return ret
        return h

    if op is Opcode.PREFETCH and int_imm and int_rs1:
        return lambda: (nxt, int_regs[rs1] + imm, False)

    if op is Opcode.JUMP:
        j_ret = (target, -1, True)
        return lambda: j_ret

    if op is Opcode.CALL:
        j_ret = (target, -1, True)
        if int_rd:
            def h():
                int_regs[rd] = nxt
                return j_ret
            return h
        if no_rd:
            return lambda: j_ret

    if op is Opcode.RET and int_rs1:
        def h():
            return (int_regs[rs1], -1, True)
        return h

    if op in (Opcode.NOP, Opcode.SERIAL):
        return lambda: ret

    if op is Opcode.HALT:
        halt_ret = (pc, -1, False)
        return lambda: halt_ret

    def h():
        return fallback(inst, pc)
    return h
