"""Functional interpreter producing the committed dynamic instruction stream.

The timing model in :mod:`repro.uarch` is trace-driven: this interpreter
executes a program architecturally (register file + memory) and yields one
:class:`~repro.isa.instructions.DynInst` per committed instruction, carrying
the branch outcome and memory effective address the timing model needs.

Wrong-path execution is *not* produced here; the timing model models the
wrong-path penalty as a front-end stall (see DESIGN.md, "Known deviations").
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.isa.instructions import (
    FP_BASE,
    NO_REG,
    NUM_FP_REGS,
    NUM_INT_REGS,
    DynInst,
    StaticInst,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


class InterpreterError(RuntimeError):
    """Raised when functional execution cannot proceed or does not halt."""


class ArchState:
    """Architectural state: integer/fp register files and memory.

    Memory is a sparse ``dict`` of byte address to value. Workloads
    initialise arrays by writing to :attr:`memory` before execution. Reads
    of uninitialised addresses return 0 (integer) so pointer-free kernels
    need no setup.
    """

    def __init__(self) -> None:
        self.int_regs: list[int] = [0] * NUM_INT_REGS
        self.fp_regs: list[float] = [0.0] * NUM_FP_REGS
        self.memory: dict[int, float] = {}

    def read_reg(self, reg: int) -> float:
        """Read an encoded register (x0 always reads 0)."""
        if reg < FP_BASE:
            return self.int_regs[reg]
        return self.fp_regs[reg - FP_BASE]

    def write_reg(self, reg: int, value: float) -> None:
        """Write an encoded register (writes to x0 are discarded)."""
        if reg == NO_REG:
            return
        if reg < FP_BASE:
            if reg != 0:
                self.int_regs[reg] = int(value)
        else:
            self.fp_regs[reg - FP_BASE] = float(value)

    def read_mem(self, addr: int) -> float:
        """Read memory at a byte address (0 if uninitialised)."""
        return self.memory.get(addr, 0)

    def write_mem(self, addr: int, value: float) -> None:
        """Write memory at a byte address."""
        self.memory[addr] = value


class Interpreter:
    """Architecturally execute a :class:`~repro.isa.program.Program`.

    Args:
        program: The program to execute.
        state: Optional pre-initialised architectural state (workloads use
            this to set up arrays and pointer-chase permutations).
        max_insts: Safety bound on committed instructions; exceeded means
            the program diverged.
    """

    def __init__(
        self,
        program: Program,
        state: ArchState | None = None,
        max_insts: int = 50_000_000,
    ) -> None:
        self.program = program
        self.state = state or ArchState()
        self.max_insts = max_insts
        self.halted = False
        self.inst_count = 0

    def run(self) -> Iterator[DynInst]:
        """Yield one :class:`DynInst` per committed instruction until HALT.

        Raises:
            InterpreterError: If ``max_insts`` is exceeded, a RET jumps out
                of range, or execution falls off the end of the program.
        """
        state = self.state
        program = self.program
        pc = 0
        seq = 0
        n_insts = len(program)
        while True:
            if pc >= n_insts or pc < 0:
                raise InterpreterError(
                    f"{program.name}: pc {pc} outside program"
                )
            if seq >= self.max_insts:
                raise InterpreterError(
                    f"{program.name}: exceeded {self.max_insts} committed "
                    "instructions without HALT"
                )
            inst = program[pc]
            next_pc, eff_addr, taken = self._execute(inst, pc)
            dyn = DynInst(
                static=inst,
                seq=seq,
                eff_addr=eff_addr,
                taken=taken,
                next_index=next_pc,
            )
            yield dyn
            seq += 1
            self.inst_count = seq
            if inst.op == Opcode.HALT:
                self.halted = True
                return
            pc = next_pc

    def _execute(
        self, inst: StaticInst, pc: int
    ) -> tuple[int, int, bool]:
        """Execute one instruction; return (next_pc, eff_addr, taken)."""
        state = self.state
        op = inst.op
        next_pc = pc + 1
        eff_addr = -1
        taken = False

        if op == Opcode.NOP or op == Opcode.SERIAL:
            pass
        elif op == Opcode.ADD:
            state.write_reg(
                inst.rd, state.read_reg(inst.rs1) + state.read_reg(inst.rs2)
            )
        elif op == Opcode.SUB:
            state.write_reg(
                inst.rd, state.read_reg(inst.rs1) - state.read_reg(inst.rs2)
            )
        elif op == Opcode.AND_:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1)) & int(state.read_reg(inst.rs2)),
            )
        elif op == Opcode.OR_:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1)) | int(state.read_reg(inst.rs2)),
            )
        elif op == Opcode.XOR_:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1)) ^ int(state.read_reg(inst.rs2)),
            )
        elif op == Opcode.SLT:
            state.write_reg(
                inst.rd,
                1 if state.read_reg(inst.rs1) < state.read_reg(inst.rs2) else 0,
            )
        elif op == Opcode.SLL:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1))
                << (int(state.read_reg(inst.rs2)) & 63),
            )
        elif op == Opcode.SRL:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1))
                >> (int(state.read_reg(inst.rs2)) & 63),
            )
        elif op == Opcode.ADDI:
            state.write_reg(inst.rd, state.read_reg(inst.rs1) + inst.imm)
        elif op == Opcode.ANDI:
            state.write_reg(
                inst.rd, int(state.read_reg(inst.rs1)) & int(inst.imm)
            )
        elif op == Opcode.ORI:
            state.write_reg(
                inst.rd, int(state.read_reg(inst.rs1)) | int(inst.imm)
            )
        elif op == Opcode.XORI:
            state.write_reg(
                inst.rd, int(state.read_reg(inst.rs1)) ^ int(inst.imm)
            )
        elif op == Opcode.SLTI:
            state.write_reg(
                inst.rd, 1 if state.read_reg(inst.rs1) < inst.imm else 0
            )
        elif op == Opcode.LUI:
            state.write_reg(inst.rd, inst.imm)
        elif op == Opcode.MUL:
            state.write_reg(
                inst.rd,
                int(state.read_reg(inst.rs1)) * int(state.read_reg(inst.rs2)),
            )
        elif op == Opcode.DIV:
            divisor = int(state.read_reg(inst.rs2))
            dividend = int(state.read_reg(inst.rs1))
            state.write_reg(
                inst.rd, 0 if divisor == 0 else int(dividend / divisor)
            )
        elif op == Opcode.REM:
            divisor = int(state.read_reg(inst.rs2))
            dividend = int(state.read_reg(inst.rs1))
            state.write_reg(
                inst.rd,
                dividend if divisor == 0 else int(math.fmod(dividend, divisor)),
            )
        elif op == Opcode.FADD:
            state.write_reg(
                inst.rd, state.read_reg(inst.rs1) + state.read_reg(inst.rs2)
            )
        elif op == Opcode.FSUB:
            state.write_reg(
                inst.rd, state.read_reg(inst.rs1) - state.read_reg(inst.rs2)
            )
        elif op == Opcode.FMUL:
            state.write_reg(
                inst.rd, state.read_reg(inst.rs1) * state.read_reg(inst.rs2)
            )
        elif op == Opcode.FDIV:
            divisor = state.read_reg(inst.rs2)
            state.write_reg(
                inst.rd,
                0.0 if divisor == 0 else state.read_reg(inst.rs1) / divisor,
            )
        elif op == Opcode.FSQRT:
            state.write_reg(inst.rd, math.sqrt(abs(state.read_reg(inst.rs1))))
        elif op == Opcode.FMIN:
            state.write_reg(
                inst.rd,
                min(state.read_reg(inst.rs1), state.read_reg(inst.rs2)),
            )
        elif op == Opcode.FMAX:
            state.write_reg(
                inst.rd,
                max(state.read_reg(inst.rs1), state.read_reg(inst.rs2)),
            )
        elif op == Opcode.FCVT:
            state.write_reg(inst.rd, float(state.read_reg(inst.rs1)))
        elif op == Opcode.FMV:
            state.write_reg(inst.rd, int(state.read_reg(inst.rs1)))
        elif op in (Opcode.LOAD, Opcode.FLOAD):
            eff_addr = int(state.read_reg(inst.rs1) + inst.imm)
            state.write_reg(inst.rd, state.read_mem(eff_addr))
        elif op in (Opcode.STORE, Opcode.FSTORE):
            eff_addr = int(state.read_reg(inst.rs1) + inst.imm)
            state.write_mem(eff_addr, state.read_reg(inst.rs2))
        elif op == Opcode.PREFETCH:
            eff_addr = int(state.read_reg(inst.rs1) + inst.imm)
        elif op == Opcode.BEQ:
            taken = state.read_reg(inst.rs1) == state.read_reg(inst.rs2)
            if taken:
                next_pc = inst.target
        elif op == Opcode.BNE:
            taken = state.read_reg(inst.rs1) != state.read_reg(inst.rs2)
            if taken:
                next_pc = inst.target
        elif op == Opcode.BLT:
            taken = state.read_reg(inst.rs1) < state.read_reg(inst.rs2)
            if taken:
                next_pc = inst.target
        elif op == Opcode.BGE:
            taken = state.read_reg(inst.rs1) >= state.read_reg(inst.rs2)
            if taken:
                next_pc = inst.target
        elif op == Opcode.JUMP:
            taken = True
            next_pc = inst.target
        elif op == Opcode.CALL:
            taken = True
            state.write_reg(inst.rd, pc + 1)
            next_pc = inst.target
        elif op == Opcode.RET:
            taken = True
            next_pc = int(state.read_reg(inst.rs1))
        elif op == Opcode.HALT:
            next_pc = pc
        else:  # pragma: no cover - exhaustive over Opcode
            raise InterpreterError(f"unimplemented opcode {op!r}")
        return next_pc, eff_addr, taken
