"""Assembled program representation with symbol information.

A :class:`Program` is an immutable list of :class:`~repro.isa.instructions.
StaticInst` plus the symbol tables needed by profile aggregation: label map,
function extents, and basic-block boundaries. Programs are produced by
:class:`repro.isa.builder.ProgramBuilder`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import StaticInst
from repro.isa.opcodes import BRANCH_OPS, CONTROL_OPS, Opcode


class ProgramError(ValueError):
    """Raised for malformed programs (unresolved labels, bad targets...)."""


@dataclass(frozen=True)
class FunctionInfo:
    """Extent of one function: instruction indices [start, end)."""

    name: str
    start: int
    end: int

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.end


class Program:
    """An assembled program.

    Args:
        name: Workload name (used in reports).
        insts: The instruction list; each instruction's ``index`` must equal
            its position.
        labels: Mapping of label name to instruction index.

    Raises:
        ProgramError: If the program fails validation (see :meth:`validate`).
    """

    def __init__(
        self,
        name: str,
        insts: list[StaticInst],
        labels: dict[str, int] | None = None,
    ) -> None:
        self.name = name
        self.insts: tuple[StaticInst, ...] = tuple(insts)
        self.labels: dict[str, int] = dict(labels or {})
        self.validate()
        self.functions: tuple[FunctionInfo, ...] = self._compute_functions()
        self._func_of: tuple[str, ...] = tuple(i.func for i in self.insts)
        self.basic_blocks: tuple[int, ...] = self._compute_basic_blocks()

    def __len__(self) -> int:
        return len(self.insts)

    def __getitem__(self, index: int) -> StaticInst:
        return self.insts[index]

    def __iter__(self):
        return iter(self.insts)

    def validate(self) -> None:
        """Check structural invariants of the program.

        Raises:
            ProgramError: If indices are not sequential, a control-flow
                target is out of range, the program is empty, or the program
                cannot terminate (contains no HALT).
        """
        if not self.insts:
            raise ProgramError(f"program {self.name!r} is empty")
        for pos, inst in enumerate(self.insts):
            if inst.index != pos:
                raise ProgramError(
                    f"{self.name}: instruction at position {pos} has "
                    f"index {inst.index}"
                )
            if inst.op in CONTROL_OPS and inst.op != Opcode.RET:
                if not 0 <= inst.target < len(self.insts):
                    raise ProgramError(
                        f"{self.name}: {inst.disasm()} at {pos} targets "
                        f"{inst.target}, outside [0, {len(self.insts)})"
                    )
        if not any(i.op == Opcode.HALT for i in self.insts):
            raise ProgramError(f"program {self.name!r} has no HALT")

    def func_of(self, index: int) -> str:
        """Name of the function containing instruction *index*."""
        return self._func_of[index]

    def bb_of(self, index: int) -> int:
        """Basic-block id (leader index) containing instruction *index*."""
        return self.basic_blocks[index]

    def disasm(self) -> str:
        """Full program disassembly, one line per instruction."""
        index_to_label = {v: k for k, v in self.labels.items()}
        lines = []
        current_func = None
        for inst in self.insts:
            if inst.func != current_func:
                current_func = inst.func
                lines.append(f"<{current_func}>:")
            prefix = ""
            if inst.index in index_to_label:
                prefix = f"{index_to_label[inst.index]}: "
            lines.append(f"  {inst.index:4d}  {prefix}{inst.disasm()}")
        return "\n".join(lines)

    def _compute_functions(self) -> tuple[FunctionInfo, ...]:
        funcs: list[FunctionInfo] = []
        start = 0
        current = self.insts[0].func
        for pos, inst in enumerate(self.insts):
            if inst.func != current:
                funcs.append(FunctionInfo(current, start, pos))
                start, current = pos, inst.func
        funcs.append(FunctionInfo(current, start, len(self.insts)))
        return tuple(funcs)

    def _compute_basic_blocks(self) -> tuple[int, ...]:
        """Map every instruction index to its basic-block leader index.

        Leaders are: instruction 0, every control-flow target, and every
        instruction following a control-flow instruction or a HALT.
        """
        leaders = {0}
        for inst in self.insts:
            if inst.op in CONTROL_OPS:
                if inst.target >= 0:
                    leaders.add(inst.target)
                if inst.index + 1 < len(self.insts):
                    leaders.add(inst.index + 1)
            elif inst.op in (Opcode.HALT, Opcode.SERIAL):
                if inst.index + 1 < len(self.insts):
                    leaders.add(inst.index + 1)
        mapping = []
        current_leader = 0
        for pos in range(len(self.insts)):
            if pos in leaders:
                current_leader = pos
            mapping.append(current_leader)
        return tuple(mapping)

    # Set of conditional-branch static indices (used by predictors/tests).
    @property
    def branch_indices(self) -> frozenset[int]:
        """Indices of all conditional branch instructions."""
        return frozenset(
            i.index for i in self.insts if i.op in BRANCH_OPS
        )
