"""RISC-like instruction set, program representation, and functional model.

This package provides the architectural substrate that the timing model in
:mod:`repro.uarch` simulates:

* :mod:`repro.isa.opcodes` -- the opcode and operation-class vocabulary.
* :mod:`repro.isa.instructions` -- static and dynamic instruction records.
* :mod:`repro.isa.program` -- an assembled program with symbol information
  (labels, functions, basic blocks) used for profile aggregation.
* :mod:`repro.isa.builder` -- a tiny assembler (``ProgramBuilder``) used by
  the synthetic workloads in :mod:`repro.workloads`.
* :mod:`repro.isa.interpreter` -- the functional interpreter that produces
  the committed dynamic instruction stream (branch outcomes and effective
  addresses) consumed by the timing model.
"""

from repro.isa.opcodes import Opcode, OpClass, op_class
from repro.isa.instructions import StaticInst, DynInst
from repro.isa.program import Program, FunctionInfo
from repro.isa.builder import ProgramBuilder, Reg
from repro.isa.interpreter import Interpreter, ArchState, InterpreterError
from repro.isa.asmtext import AsmSyntaxError, format_asm, parse_asm

__all__ = [
    "AsmSyntaxError",
    "format_asm",
    "parse_asm",
    "Opcode",
    "OpClass",
    "op_class",
    "StaticInst",
    "DynInst",
    "Program",
    "FunctionInfo",
    "ProgramBuilder",
    "Reg",
    "Interpreter",
    "ArchState",
    "InterpreterError",
]
