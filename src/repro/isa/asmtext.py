"""Textual assembly: parse and format programs as ``.asm`` text.

A small, regular syntax over the ISA so kernels can live in files and
profiles can reference readable listings::

    .func main
        li x1, 100
    loop:
        load x2, 1000(x1)
        addi x1, x1, -1
        bne x1, x0, loop
        halt

Rules: one instruction per line; ``#`` starts a comment; ``name:``
defines a label; ``.func name`` starts a function; memory operands use
``offset(base)``. :func:`format_asm` emits text that :func:`parse_asm`
reparses into an identical program (round-trip tested property-style).
"""

from __future__ import annotations

import re

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import NO_REG, StaticInst, reg_name
from repro.isa.opcodes import BRANCH_OPS, Opcode
from repro.isa.program import Program, ProgramError


class AsmSyntaxError(ProgramError):
    """Raised for malformed assembly text (includes the line number)."""


_MEM_OPERAND = re.compile(r"^(-?\d+)?\((\w+)\)$")

#: mnemonic -> (opcode, operand shape)
#: shapes: rrr (rd,rs1,rs2), rri (rd,rs1,imm), ri (rd,imm), rr (rd,rs1),
#: mem_load (rd, off(base)), mem_store (rs2, off(base)),
#: mem_pf (off(base)), branch (rs1,rs2,label), jump (label), none.
_FORMATS: dict[str, tuple[Opcode, str]] = {
    "add": (Opcode.ADD, "rrr"),
    "sub": (Opcode.SUB, "rrr"),
    "and": (Opcode.AND_, "rrr"),
    "or": (Opcode.OR_, "rrr"),
    "xor": (Opcode.XOR_, "rrr"),
    "slt": (Opcode.SLT, "rrr"),
    "sll": (Opcode.SLL, "rrr"),
    "srl": (Opcode.SRL, "rrr"),
    "mul": (Opcode.MUL, "rrr"),
    "div": (Opcode.DIV, "rrr"),
    "rem": (Opcode.REM, "rrr"),
    "addi": (Opcode.ADDI, "rri"),
    "andi": (Opcode.ANDI, "rri"),
    "ori": (Opcode.ORI, "rri"),
    "xori": (Opcode.XORI, "rri"),
    "slti": (Opcode.SLTI, "rri"),
    "li": (Opcode.LUI, "ri"),
    "fadd": (Opcode.FADD, "rrr"),
    "fsub": (Opcode.FSUB, "rrr"),
    "fmul": (Opcode.FMUL, "rrr"),
    "fdiv": (Opcode.FDIV, "rrr"),
    "fmin": (Opcode.FMIN, "rrr"),
    "fmax": (Opcode.FMAX, "rrr"),
    "fsqrt": (Opcode.FSQRT, "rr"),
    "fcvt": (Opcode.FCVT, "rr"),
    "fmv": (Opcode.FMV, "rr"),
    "load": (Opcode.LOAD, "mem_load"),
    "fload": (Opcode.FLOAD, "mem_load"),
    "store": (Opcode.STORE, "mem_store"),
    "fstore": (Opcode.FSTORE, "mem_store"),
    "prefetch": (Opcode.PREFETCH, "mem_pf"),
    "beq": (Opcode.BEQ, "branch"),
    "bne": (Opcode.BNE, "branch"),
    "blt": (Opcode.BLT, "branch"),
    "bge": (Opcode.BGE, "branch"),
    "jump": (Opcode.JUMP, "jump"),
    "call": (Opcode.CALL, "jump"),
    "ret": (Opcode.RET, "none"),
    "serial": (Opcode.SERIAL, "none"),
    "nop": (Opcode.NOP, "none"),
    "halt": (Opcode.HALT, "none"),
}

_OPCODE_TO_MNEMONIC = {op: m for m, (op, _) in _FORMATS.items()}


def _split_mem(operand: str, line_no: int) -> tuple[int, str]:
    match = _MEM_OPERAND.match(operand)
    if not match:
        raise AsmSyntaxError(
            f"line {line_no}: expected offset(base), got {operand!r}"
        )
    offset = int(match.group(1) or 0)
    return offset, match.group(2)


def parse_asm(text: str, name: str = "asm") -> Program:
    """Parse assembly text into a validated :class:`Program`.

    Raises:
        AsmSyntaxError: On unknown mnemonics, bad operand counts, or
            malformed operands (with the offending line number).
        ProgramError: If the assembled program fails validation.
    """
    builder = ProgramBuilder(name)
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".func"):
            parts = line.split()
            if len(parts) != 2:
                raise AsmSyntaxError(
                    f"line {line_no}: .func needs exactly one name"
                )
            builder.function(parts[1])
            continue
        if line.endswith(":") and " " not in line:
            builder.label(line[:-1])
            continue
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        if mnemonic not in _FORMATS:
            raise AsmSyntaxError(
                f"line {line_no}: unknown mnemonic {mnemonic!r}"
            )
        opcode, shape = _FORMATS[mnemonic]
        operands = [
            operand.strip()
            for operand in rest.split(",")
            if operand.strip()
        ]

        def need(count: int) -> None:
            if len(operands) != count:
                raise AsmSyntaxError(
                    f"line {line_no}: {mnemonic} expects {count} "
                    f"operand(s), got {len(operands)}"
                )

        try:
            if shape == "rrr":
                need(3)
                builder._emit(opcode, operands[0], operands[1],
                              operands[2])
            elif shape == "rri":
                need(3)
                builder._emit(opcode, operands[0], operands[1],
                              imm=int(operands[2]))
            elif shape == "ri":
                need(2)
                builder._emit(opcode, operands[0],
                              imm=int(operands[1]))
            elif shape == "rr":
                need(2)
                builder._emit(opcode, operands[0], operands[1])
            elif shape == "mem_load":
                need(2)
                offset, base = _split_mem(operands[1], line_no)
                builder._emit(opcode, operands[0], base, imm=offset)
            elif shape == "mem_store":
                need(2)
                offset, base = _split_mem(operands[1], line_no)
                builder._emit(opcode, NO_REG, base, operands[0],
                              imm=offset)
            elif shape == "mem_pf":
                need(1)
                offset, base = _split_mem(operands[0], line_no)
                builder._emit(opcode, NO_REG, base, imm=offset)
            elif shape == "branch":
                need(3)
                builder._emit(opcode, NO_REG, operands[0], operands[1],
                              target_label=operands[2])
            elif shape == "jump":
                need(1)
                if opcode == Opcode.CALL:
                    builder.call(operands[0])
                else:
                    builder.jump(operands[0])
            else:  # none
                need(0)
                if opcode == Opcode.RET:
                    builder.ret()
                else:
                    builder._emit(opcode)
        except ValueError as exc:
            raise AsmSyntaxError(f"line {line_no}: {exc}") from exc
    return builder.build()


def _format_operands(inst: StaticInst, labels: dict[int, str]) -> str:
    opcode = inst.op
    shape = _FORMATS[_OPCODE_TO_MNEMONIC[opcode]][1]
    if shape == "rrr":
        return (
            f"{reg_name(inst.rd)}, {reg_name(inst.rs1)}, "
            f"{reg_name(inst.rs2)}"
        )
    if shape == "rri":
        return (
            f"{reg_name(inst.rd)}, {reg_name(inst.rs1)}, "
            f"{int(inst.imm)}"
        )
    if shape == "ri":
        return f"{reg_name(inst.rd)}, {int(inst.imm)}"
    if shape == "rr":
        return f"{reg_name(inst.rd)}, {reg_name(inst.rs1)}"
    if shape == "mem_load":
        return (
            f"{reg_name(inst.rd)}, {int(inst.imm)}"
            f"({reg_name(inst.rs1)})"
        )
    if shape == "mem_store":
        return (
            f"{reg_name(inst.rs2)}, {int(inst.imm)}"
            f"({reg_name(inst.rs1)})"
        )
    if shape == "mem_pf":
        return f"{int(inst.imm)}({reg_name(inst.rs1)})"
    if shape == "branch":
        return (
            f"{reg_name(inst.rs1)}, {reg_name(inst.rs2)}, "
            f"{labels[inst.target]}"
        )
    if shape == "jump":
        return labels[inst.target]
    return ""


def format_asm(program: Program) -> str:
    """Emit re-parseable assembly text for *program*."""
    # Every control-flow target needs a label; reuse source labels and
    # synthesise `L<index>` for the rest.
    labels: dict[int, str] = {
        index: name for name, index in program.labels.items()
    }
    for inst in program:
        if inst.op in BRANCH_OPS or inst.op in (Opcode.JUMP, Opcode.CALL):
            labels.setdefault(inst.target, f"L{inst.target}")
    lines: list[str] = []
    current_func = None
    for inst in program:
        if inst.func != current_func:
            current_func = inst.func
            lines.append(f".func {current_func}")
        if inst.index in labels:
            lines.append(f"{labels[inst.index]}:")
        mnemonic = _OPCODE_TO_MNEMONIC[inst.op]
        operands = _format_operands(inst, labels)
        lines.append(f"    {mnemonic} {operands}".rstrip())
    return "\n".join(lines) + "\n"
