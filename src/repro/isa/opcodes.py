"""Opcode vocabulary for the RISC-like ISA used by the reproduction.

The ISA is deliberately small: just enough to express the synthetic
SPEC-CPU2017-like kernels in :mod:`repro.workloads` while exercising every
microarchitectural mechanism that TEA's nine performance events cover
(caches, TLBs, branch prediction, store bandwidth, pipeline flushes, and
long-latency floating-point execution).

Opcodes are grouped into *operation classes* (:class:`OpClass`) which is
what the timing model keys functional-unit selection and latency on.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """Concrete instruction opcodes with functional semantics."""

    NOP = 0

    # Integer ALU (register-register and register-immediate).
    ADD = 1
    SUB = 2
    AND_ = 3
    OR_ = 4
    XOR_ = 5
    SLT = 6  # rd = 1 if rs1 < rs2 else 0
    SLL = 7  # shift left logical
    SRL = 8  # shift right logical
    ADDI = 9
    ANDI = 10
    ORI = 11
    XORI = 12
    SLTI = 13
    LUI = 14  # rd = imm (load immediate)

    # Integer multiply / divide.
    MUL = 20
    DIV = 21
    REM = 22

    # Floating point.
    FADD = 30
    FSUB = 31
    FMUL = 32
    FDIV = 33
    FSQRT = 34
    FMIN = 35
    FMAX = 36
    FCVT = 37  # int reg -> fp reg conversion
    FMV = 38  # fp reg -> int reg move (truncates)

    # Memory.
    LOAD = 50  # rd  <- mem[rs1 + imm]      (integer)
    STORE = 51  # mem[rs1 + imm] <- rs2     (integer)
    FLOAD = 52  # fd  <- mem[rs1 + imm]     (floating point)
    FSTORE = 53  # mem[rs1 + imm] <- fs2    (floating point)
    PREFETCH = 54  # software prefetch of mem[rs1 + imm] (no arch effect)

    # Control flow.
    BEQ = 70
    BNE = 71
    BLT = 72
    BGE = 73
    JUMP = 74  # unconditional direct jump
    CALL = 75  # jump-and-link: x31 <- return address
    RET = 76  # indirect jump to x31

    # Serializing operations (model RISC-V fsflags/frflags CSR accesses
    # which always flush the pipeline on the BOOM core in the paper).
    SERIAL = 90

    # Program termination.
    HALT = 99


class OpClass(enum.IntEnum):
    """Operation classes: what the timing model schedules and times."""

    NOP = 0
    INT_ALU = 1
    INT_MUL = 2
    INT_DIV = 3
    FP_ADD = 4
    FP_MUL = 5
    FP_DIV = 6
    FP_SQRT = 7
    LOAD = 8
    STORE = 9
    PREFETCH = 10
    BRANCH = 11
    JUMP = 12
    SERIAL = 13
    HALT = 14


_OP_CLASS: dict[Opcode, OpClass] = {
    Opcode.NOP: OpClass.NOP,
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.AND_: OpClass.INT_ALU,
    Opcode.OR_: OpClass.INT_ALU,
    Opcode.XOR_: OpClass.INT_ALU,
    Opcode.SLT: OpClass.INT_ALU,
    Opcode.SLL: OpClass.INT_ALU,
    Opcode.SRL: OpClass.INT_ALU,
    Opcode.ADDI: OpClass.INT_ALU,
    Opcode.ANDI: OpClass.INT_ALU,
    Opcode.ORI: OpClass.INT_ALU,
    Opcode.XORI: OpClass.INT_ALU,
    Opcode.SLTI: OpClass.INT_ALU,
    Opcode.LUI: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MUL,
    Opcode.DIV: OpClass.INT_DIV,
    Opcode.REM: OpClass.INT_DIV,
    Opcode.FADD: OpClass.FP_ADD,
    Opcode.FSUB: OpClass.FP_ADD,
    Opcode.FMUL: OpClass.FP_MUL,
    Opcode.FDIV: OpClass.FP_DIV,
    Opcode.FSQRT: OpClass.FP_SQRT,
    Opcode.FMIN: OpClass.FP_ADD,
    Opcode.FMAX: OpClass.FP_ADD,
    Opcode.FCVT: OpClass.FP_ADD,
    Opcode.FMV: OpClass.FP_ADD,
    Opcode.LOAD: OpClass.LOAD,
    Opcode.FLOAD: OpClass.LOAD,
    Opcode.STORE: OpClass.STORE,
    Opcode.FSTORE: OpClass.STORE,
    Opcode.PREFETCH: OpClass.PREFETCH,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.JUMP: OpClass.JUMP,
    Opcode.CALL: OpClass.JUMP,
    Opcode.RET: OpClass.JUMP,
    Opcode.SERIAL: OpClass.SERIAL,
    Opcode.HALT: OpClass.HALT,
}

#: Opcodes that read memory.
MEMORY_READ_OPS = frozenset({Opcode.LOAD, Opcode.FLOAD})
#: Opcodes that write memory.
MEMORY_WRITE_OPS = frozenset({Opcode.STORE, Opcode.FSTORE})
#: Opcodes with a memory effective address (incl. software prefetch).
MEMORY_OPS = MEMORY_READ_OPS | MEMORY_WRITE_OPS | {Opcode.PREFETCH}
#: Conditional branches.
BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})
#: All control-transfer opcodes.
CONTROL_OPS = BRANCH_OPS | {Opcode.JUMP, Opcode.CALL, Opcode.RET}


def op_class(op: Opcode) -> OpClass:
    """Return the :class:`OpClass` that the timing model uses for *op*."""
    return _OP_CLASS[op]


def is_memory(op: Opcode) -> bool:
    """True if *op* computes a memory effective address."""
    return op in MEMORY_OPS


def is_control(op: Opcode) -> bool:
    """True if *op* may redirect the program counter."""
    return op in CONTROL_OPS
