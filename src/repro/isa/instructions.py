"""Static and dynamic instruction records.

A :class:`StaticInst` is one entry of an assembled :class:`repro.isa.program.
Program`; a :class:`DynInst` is one committed execution of a static
instruction as produced by the functional interpreter and consumed by the
timing model.

Register encoding
-----------------
Registers are encoded as small integers: ``0..31`` are the integer registers
``x0..x31`` (with ``x0`` hard-wired to zero) and ``32..63`` are the
floating-point registers ``f0..f31``. ``-1`` means "no register".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import Opcode, OpClass, op_class

#: Number of integer architectural registers.
NUM_INT_REGS = 32
#: Number of floating-point architectural registers.
NUM_FP_REGS = 32
#: First encoded floating-point register number.
FP_BASE = NUM_INT_REGS
#: Encoding for "no register operand".
NO_REG = -1
#: Link register used by CALL/RET (x31).
LINK_REG = 31
#: Bytes per instruction (used to derive byte addresses for the I-cache).
INST_BYTES = 4


def reg_name(reg: int) -> str:
    """Human-readable name for an encoded register number."""
    if reg == NO_REG:
        return "-"
    if reg < FP_BASE:
        return f"x{reg}"
    return f"f{reg - FP_BASE}"


def is_fp_reg(reg: int) -> bool:
    """True if the encoded register number names a floating-point register."""
    return reg >= FP_BASE


@dataclass(frozen=True)
class StaticInst:
    """One static instruction of an assembled program.

    Attributes:
        index: Position in the program's instruction list. The instruction's
            byte address is ``index * INST_BYTES``.
        op: Concrete opcode.
        rd: Destination register (encoded), or ``NO_REG``.
        rs1: First source register, or ``NO_REG``.
        rs2: Second source register, or ``NO_REG``.
        imm: Immediate operand (address offset, constant, or fp literal).
        target: Resolved control-flow target (instruction index) for direct
            branches/jumps/calls, else ``-1``.
        func: Name of the enclosing function (for function-granularity PICS).
        label: Source-level label attached to this instruction, if any.
    """

    index: int
    op: Opcode
    rd: int = NO_REG
    rs1: int = NO_REG
    rs2: int = NO_REG
    imm: float = 0
    target: int = -1
    func: str = "main"
    label: str | None = None

    @property
    def address(self) -> int:
        """Byte address of the instruction."""
        return self.index * INST_BYTES

    @property
    def op_class(self) -> OpClass:
        """Operation class used by the timing model."""
        return op_class(self.op)

    def sources(self) -> tuple[int, ...]:
        """Encoded source registers this instruction actually reads."""
        srcs = []
        if self.rs1 != NO_REG:
            srcs.append(self.rs1)
        if self.rs2 != NO_REG:
            srcs.append(self.rs2)
        return tuple(srcs)

    def disasm(self) -> str:
        """Render a human-readable disassembly line."""
        parts = [self.op.name.rstrip("_").lower()]
        ops = []
        if self.rd != NO_REG:
            ops.append(reg_name(self.rd))
        if self.rs1 != NO_REG:
            ops.append(reg_name(self.rs1))
        if self.rs2 != NO_REG:
            ops.append(reg_name(self.rs2))
        if self.target >= 0:
            ops.append(f"@{self.target}")
        elif self.imm:
            ops.append(str(self.imm))
        return parts[0] + (" " + ", ".join(ops) if ops else "")


@dataclass(slots=True)
class DynInst:
    """One committed dynamic execution of a static instruction.

    Produced by :class:`repro.isa.interpreter.Interpreter`; the timing model
    replays this stream, adding speculation and latency on top.

    Attributes:
        static: The static instruction executed.
        seq: Dynamic sequence number (0-based, committed order).
        eff_addr: Byte effective address for memory operations, else ``-1``.
        taken: For control-flow operations, whether the branch/jump was
            taken; always True for unconditional control flow.
        next_index: Index of the next instruction in program order that will
            execute after this one (the architectural next PC).
    """

    static: StaticInst
    seq: int
    eff_addr: int = -1
    taken: bool = False
    next_index: int = -1

    @property
    def index(self) -> int:
        """Static instruction index."""
        return self.static.index

    @property
    def op(self) -> Opcode:
        """Concrete opcode."""
        return self.static.op
