"""Backend-neutral execution semantics shared by every backend.

The architectural semantics of the ISA live in one place -- the
functional :class:`~repro.isa.interpreter.Interpreter` -- and every
execution backend (functional, sampled, cycle-level detailed) consumes
the same committed dynamic-instruction stream through the
:class:`InstStream` wrapper defined here. That sharing is what makes
the backends differential-testable: the committed instruction sequence,
every effective address, every branch outcome, and the final
architectural state are produced by exactly one implementation, so two
backends can only disagree about *time*, never about *what executed*.

``InstStream`` also owns the replay deque the detailed core uses for
flush re-fetch: a squashed µop's dynamic record is pushed back onto the
front of the stream and re-fetched later. Because the deque lives on
the stream rather than the core, a core can be detached at a
commit-boundary (sampled-simulation window edges) and the stream hands
the un-committed tail to whatever executes next -- the stream position
is restored to the boundary exactly.

This module must stay free of ``repro.uarch`` imports (tea-lint TL007):
it is the layer *below* the timing model.
"""

from __future__ import annotations

import hashlib
from collections import deque
from collections.abc import Iterator

from repro.isa.instructions import DynInst
from repro.isa.interpreter import ArchState, Interpreter
from repro.isa.program import Program


class InstStream:
    """Replayable committed dynamic-instruction stream.

    One functional interpreter, wrapped with:

    * a ``replay`` deque -- instructions peeked (or squashed) but not
      yet consumed sit at the front of the stream;
    * an optional bounded ``history`` of the most recently *produced*
      instructions, used by the sampled backend to build warm
      microarchitectural state at window boundaries. Production order
      is program (commit) order and every instruction is produced
      exactly once, so the history is identical no matter which backend
      drives the stream.

    The detailed core's fetch hot loop bypasses :meth:`peek`/:meth:`take`
    and works on ``replay``/``source``/``done`` directly; those three
    attributes are public API for exactly that reason.
    """

    __slots__ = ("program", "interp", "source", "replay", "history", "done")

    def __init__(
        self,
        program: Program,
        arch_state: ArchState | None = None,
        max_insts: int = 50_000_000,
        history: int = 0,
    ) -> None:
        self.program = program
        self.interp = Interpreter(program, arch_state, max_insts)
        self.replay: deque[DynInst] = deque()
        self.done = False
        if history > 0:
            self.history: deque[DynInst] | None = deque(maxlen=history)
            self.source: Iterator[DynInst] = self._tee(self.interp.run())
        else:
            self.history = None
            self.source = self.interp.run()

    def _tee(self, gen: Iterator[DynInst]) -> Iterator[DynInst]:
        append = self.history.append
        for dyn in gen:
            append(dyn)
            yield dyn

    @property
    def state(self) -> ArchState:
        """The (single, shared) architectural state."""
        return self.interp.state

    # ------------------------------------------------------------------
    # Stream protocol.
    # ------------------------------------------------------------------
    def peek(self) -> DynInst | None:
        """Next instruction without consuming it (None at end)."""
        if self.replay:
            return self.replay[0]
        if self.done:
            return None
        try:
            dyn = next(self.source)
        except StopIteration:
            self.done = True
            return None
        self.replay.append(dyn)
        return dyn

    def consume(self) -> DynInst:
        """Consume the previously peeked instruction."""
        return self.replay.popleft()

    def take(self) -> DynInst | None:
        """Consume and return the next instruction (None at end).

        Unlike ``peek()`` + ``consume()`` this never routes fresh
        instructions through the replay deque -- it is the functional
        backend's hot path.
        """
        if self.replay:
            return self.replay.popleft()
        if self.done:
            return None
        try:
            return next(self.source)
        except StopIteration:
            self.done = True
            return None

    def empty(self) -> bool:
        """True when no instructions remain."""
        return not self.replay and (self.done or self.peek() is None)

    def push_front(self, dyns) -> None:
        """Return instructions to the front (youngest-first iterable)."""
        self.replay.extendleft(dyns)

    def recent_before(self, bound_seq: int, k: int) -> list[DynInst]:
        """The last *k* produced instructions with ``seq < bound_seq``.

        Used at sampled-window boundaries: ``bound_seq`` is the global
        committed-instruction position, and the result is the warm-up
        trace for the window's microarchitectural state. Requires the
        stream to have been built with ``history > 0``.
        """
        if k <= 0 or self.history is None:
            return []
        return [d for d in self.history if d.seq < bound_seq][-k:]


# ----------------------------------------------------------------------
# Architectural-state comparison (the functional-vs-detailed gate).
# ----------------------------------------------------------------------
def snapshot_arch(state: ArchState) -> dict:
    """A comparable snapshot of the full architectural state."""
    return {
        "int_regs": list(state.int_regs),
        "fp_regs": list(state.fp_regs),
        "memory": dict(state.memory),
    }


def arch_digest(state: ArchState) -> str:
    """A stable hex digest of the architectural state.

    ``repr`` round-trips ints and floats exactly (including the
    int-vs-float distinction and the full float mantissa), so two
    states share a digest iff they are bit-identical.
    """
    h = hashlib.sha256()
    for reg in state.int_regs:
        h.update(repr(reg).encode())
        h.update(b",")
    for reg in state.fp_regs:
        h.update(repr(reg).encode())
        h.update(b",")
    for addr in sorted(state.memory):
        h.update(repr(addr).encode())
        h.update(b":")
        h.update(repr(state.memory[addr]).encode())
        h.update(b";")
    return h.hexdigest()
