"""A tiny assembler for building workload programs.

:class:`ProgramBuilder` exposes one method per opcode plus ``label``/
``function`` bookkeeping, and resolves forward label references at
:meth:`ProgramBuilder.build` time::

    b = ProgramBuilder("countdown")
    b.li("x1", 100)
    b.label("loop")
    b.addi("x1", "x1", -1)
    b.bne("x1", "x0", "loop")
    b.halt()
    program = b.build()

Registers may be written as strings (``"x0".."x31"``, ``"f0".."f31"``) or as
already-encoded integers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import FP_BASE, LINK_REG, NO_REG, StaticInst
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, ProgramError


def parse_reg(reg: int | str) -> int:
    """Encode a register name (``"x5"``, ``"f2"``) or pass through an int.

    Raises:
        ProgramError: If the name is malformed or out of range.
    """
    if isinstance(reg, int):
        if not 0 <= reg < 2 * FP_BASE:
            raise ProgramError(f"register number {reg} out of range")
        return reg
    if len(reg) >= 2 and reg[0] in "xf" and reg[1:].isdigit():
        num = int(reg[1:])
        if 0 <= num < FP_BASE:
            return num if reg[0] == "x" else FP_BASE + num
    raise ProgramError(f"bad register name {reg!r}")


#: Backwards-compatible alias used throughout the workloads.
Reg = parse_reg


@dataclass
class _PendingInst:
    """An instruction before label resolution."""

    op: Opcode
    rd: int = NO_REG
    rs1: int = NO_REG
    rs2: int = NO_REG
    imm: float = 0
    target_label: str | None = None
    func: str = "main"
    label: str | None = None


class ProgramBuilder:
    """Incrementally assemble a :class:`~repro.isa.program.Program`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._insts: list[_PendingInst] = []
        self._labels: dict[str, int] = {}
        self._current_func = "main"
        self._pending_label: str | None = None

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    def function(self, name: str) -> "ProgramBuilder":
        """Start a new function; subsequent instructions belong to it."""
        self._current_func = name
        return self

    def label(self, name: str) -> "ProgramBuilder":
        """Attach a label to the next emitted instruction."""
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insts)
        self._pending_label = name
        return self

    def here(self) -> int:
        """Index the next emitted instruction will have."""
        return len(self._insts)

    # ------------------------------------------------------------------
    # Emission helper.
    # ------------------------------------------------------------------
    def _emit(
        self,
        op: Opcode,
        rd: int | str = NO_REG,
        rs1: int | str = NO_REG,
        rs2: int | str = NO_REG,
        imm: float = 0,
        target_label: str | None = None,
    ) -> "ProgramBuilder":
        inst = _PendingInst(
            op=op,
            rd=parse_reg(rd) if rd != NO_REG else NO_REG,
            rs1=parse_reg(rs1) if rs1 != NO_REG else NO_REG,
            rs2=parse_reg(rs2) if rs2 != NO_REG else NO_REG,
            imm=imm,
            target_label=target_label,
            func=self._current_func,
            label=self._pending_label,
        )
        self._pending_label = None
        self._insts.append(inst)
        return self

    # ------------------------------------------------------------------
    # Integer ALU.
    # ------------------------------------------------------------------
    def add(self, rd, rs1, rs2):
        """rd = rs1 + rs2"""
        return self._emit(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        """rd = rs1 - rs2"""
        return self._emit(Opcode.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        """rd = rs1 & rs2"""
        return self._emit(Opcode.AND_, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        """rd = rs1 | rs2"""
        return self._emit(Opcode.OR_, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        """rd = rs1 ^ rs2"""
        return self._emit(Opcode.XOR_, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        """rd = 1 if rs1 < rs2 else 0"""
        return self._emit(Opcode.SLT, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        """rd = rs1 << (rs2 & 63)"""
        return self._emit(Opcode.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        """rd = rs1 >> (rs2 & 63)"""
        return self._emit(Opcode.SRL, rd, rs1, rs2)

    def addi(self, rd, rs1, imm: int):
        """rd = rs1 + imm"""
        return self._emit(Opcode.ADDI, rd, rs1, imm=imm)

    def andi(self, rd, rs1, imm: int):
        """rd = rs1 & imm"""
        return self._emit(Opcode.ANDI, rd, rs1, imm=imm)

    def ori(self, rd, rs1, imm: int):
        """rd = rs1 | imm"""
        return self._emit(Opcode.ORI, rd, rs1, imm=imm)

    def xori(self, rd, rs1, imm: int):
        """rd = rs1 ^ imm"""
        return self._emit(Opcode.XORI, rd, rs1, imm=imm)

    def slti(self, rd, rs1, imm: int):
        """rd = 1 if rs1 < imm else 0"""
        return self._emit(Opcode.SLTI, rd, rs1, imm=imm)

    def li(self, rd, imm: int):
        """rd = imm (load immediate)"""
        return self._emit(Opcode.LUI, rd, imm=imm)

    def mul(self, rd, rs1, rs2):
        """rd = rs1 * rs2"""
        return self._emit(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        """rd = rs1 // rs2 (truncating; x/0 = 0)"""
        return self._emit(Opcode.DIV, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        """rd = rs1 % rs2 (x%0 = x)"""
        return self._emit(Opcode.REM, rd, rs1, rs2)

    def nop(self):
        """No operation."""
        return self._emit(Opcode.NOP)

    # ------------------------------------------------------------------
    # Floating point.
    # ------------------------------------------------------------------
    def fadd(self, fd, fs1, fs2):
        """fd = fs1 + fs2"""
        return self._emit(Opcode.FADD, fd, fs1, fs2)

    def fsub(self, fd, fs1, fs2):
        """fd = fs1 - fs2"""
        return self._emit(Opcode.FSUB, fd, fs1, fs2)

    def fmul(self, fd, fs1, fs2):
        """fd = fs1 * fs2"""
        return self._emit(Opcode.FMUL, fd, fs1, fs2)

    def fdiv(self, fd, fs1, fs2):
        """fd = fs1 / fs2 (x/0 = 0.0)"""
        return self._emit(Opcode.FDIV, fd, fs1, fs2)

    def fsqrt(self, fd, fs1):
        """fd = sqrt(|fs1|)"""
        return self._emit(Opcode.FSQRT, fd, fs1)

    def fmin(self, fd, fs1, fs2):
        """fd = min(fs1, fs2)"""
        return self._emit(Opcode.FMIN, fd, fs1, fs2)

    def fmax(self, fd, fs1, fs2):
        """fd = max(fs1, fs2)"""
        return self._emit(Opcode.FMAX, fd, fs1, fs2)

    def fcvt(self, fd, rs1):
        """fd = float(rs1)"""
        return self._emit(Opcode.FCVT, fd, rs1)

    def fmv(self, rd, fs1):
        """rd = int(fs1)"""
        return self._emit(Opcode.FMV, rd, fs1)

    # ------------------------------------------------------------------
    # Memory.
    # ------------------------------------------------------------------
    def load(self, rd, rs1, offset: int = 0):
        """rd = mem[rs1 + offset]"""
        return self._emit(Opcode.LOAD, rd, rs1, imm=offset)

    def store(self, rs2, rs1, offset: int = 0):
        """mem[rs1 + offset] = rs2"""
        return self._emit(Opcode.STORE, NO_REG, rs1, rs2, imm=offset)

    def fload(self, fd, rs1, offset: int = 0):
        """fd = mem[rs1 + offset]"""
        return self._emit(Opcode.FLOAD, fd, rs1, imm=offset)

    def fstore(self, fs2, rs1, offset: int = 0):
        """mem[rs1 + offset] = fs2"""
        return self._emit(Opcode.FSTORE, NO_REG, rs1, fs2, imm=offset)

    def prefetch(self, rs1, offset: int = 0):
        """Software prefetch of mem[rs1 + offset]; no architectural effect."""
        return self._emit(Opcode.PREFETCH, NO_REG, rs1, imm=offset)

    # ------------------------------------------------------------------
    # Control flow.
    # ------------------------------------------------------------------
    def beq(self, rs1, rs2, label: str):
        """Branch to *label* if rs1 == rs2."""
        return self._emit(Opcode.BEQ, NO_REG, rs1, rs2, target_label=label)

    def bne(self, rs1, rs2, label: str):
        """Branch to *label* if rs1 != rs2."""
        return self._emit(Opcode.BNE, NO_REG, rs1, rs2, target_label=label)

    def blt(self, rs1, rs2, label: str):
        """Branch to *label* if rs1 < rs2."""
        return self._emit(Opcode.BLT, NO_REG, rs1, rs2, target_label=label)

    def bge(self, rs1, rs2, label: str):
        """Branch to *label* if rs1 >= rs2."""
        return self._emit(Opcode.BGE, NO_REG, rs1, rs2, target_label=label)

    def jump(self, label: str):
        """Unconditional direct jump to *label*."""
        return self._emit(Opcode.JUMP, target_label=label)

    def call(self, label: str):
        """Jump-and-link to *label*; the return address goes to x31."""
        return self._emit(Opcode.CALL, LINK_REG, target_label=label)

    def ret(self):
        """Indirect jump to the address in x31."""
        return self._emit(Opcode.RET, NO_REG, LINK_REG)

    # ------------------------------------------------------------------
    # Special.
    # ------------------------------------------------------------------
    def serial(self):
        """Serializing CSR op (models fsflags/frflags; always flushes)."""
        return self._emit(Opcode.SERIAL)

    def halt(self):
        """Terminate the program."""
        return self._emit(Opcode.HALT)

    # ------------------------------------------------------------------
    # Assembly.
    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Resolve labels and produce the validated :class:`Program`.

        Raises:
            ProgramError: On unresolved labels or validation failure.
        """
        insts: list[StaticInst] = []
        for index, pending in enumerate(self._insts):
            target = -1
            if pending.target_label is not None:
                if pending.target_label not in self._labels:
                    raise ProgramError(
                        f"{self.name}: unresolved label "
                        f"{pending.target_label!r}"
                    )
                target = self._labels[pending.target_label]
            insts.append(
                StaticInst(
                    index=index,
                    op=pending.op,
                    rd=pending.rd,
                    rs1=pending.rs1,
                    rs2=pending.rs2,
                    imm=pending.imm,
                    target=target,
                    func=pending.func,
                    label=pending.label,
                )
            )
        return Program(self.name, insts, self._labels)
