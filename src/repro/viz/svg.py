"""A minimal SVG canvas (no third-party dependencies).

Coordinates are standard SVG: origin top-left, y grows downward. The
chart layer (:mod:`repro.viz.charts`) handles all data-to-pixel mapping;
this module only accumulates elements and serialises them.
"""

from __future__ import annotations

import html
from pathlib import Path


class SvgCanvas:
    """Accumulates SVG elements and serialises the document."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._elements: list[str] = []

    # ------------------------------------------------------------------
    # Primitives.
    # ------------------------------------------------------------------
    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        fill: str = "#4878d0",
        stroke: str = "none",
        opacity: float = 1.0,
        title: str | None = None,
    ) -> None:
        """Axis-aligned rectangle (optionally with a hover title)."""
        tooltip = (
            f"<title>{html.escape(title)}</title>" if title else ""
        )
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{max(w, 0):.2f}" '
            f'height="{max(h, 0):.2f}" fill="{fill}" stroke="{stroke}" '
            f'opacity="{opacity}">{tooltip}</rect>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "#333333",
        width: float = 1.0,
        dash: str | None = None,
    ) -> None:
        """Straight line segment."""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" '
            f'y2="{y2:.2f}" stroke="{stroke}" '
            f'stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(
        self,
        points: list[tuple[float, float]],
        stroke: str = "#4878d0",
        width: float = 2.0,
    ) -> None:
        """Open polyline through *points*."""
        path = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._elements.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def circle(
        self, cx: float, cy: float, r: float, fill: str = "#4878d0"
    ) -> None:
        """Filled circle (chart markers)."""
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" '
            f'fill="{fill}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int = 12,
        anchor: str = "start",
        fill: str = "#222222",
        rotate: float | None = None,
        bold: bool = False,
    ) -> None:
        """Text element; *anchor* is start/middle/end."""
        transform = (
            f' transform="rotate({rotate:.1f} {x:.2f} {y:.2f})"'
            if rotate is not None
            else ""
        )
        weight = ' font-weight="bold"' if bold else ""
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="sans-serif"{weight}{transform}>'
            f"{html.escape(content)}</text>"
        )

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The full SVG document."""
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>\n{body}\n</svg>\n'
        )

    def save(self, path: str | Path) -> Path:
        """Write the document to *path* and return it."""
        path = Path(path)
        path.write_text(self.render())
        return path
