"""Chart builders on top of :class:`repro.viz.svg.SvgCanvas`.

Four chart families cover every figure in the paper: grouped bars
(Fig 5), box plots (Fig 7), lines (Figs 8 and 11), and stacked PICS bars
(Figs 6, 10, 12). All builders return the SVG document as a string.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.viz.svg import SvgCanvas

#: Categorical palette (colour-blind-friendly).
PALETTE = (
    "#4878d0",
    "#ee854a",
    "#6acc64",
    "#d65f5f",
    "#956cb4",
    "#8c613c",
    "#dc7ec0",
    "#797979",
    "#d5bb67",
    "#82c6e2",
)


@dataclass
class _Frame:
    """Plot-area geometry and the data-to-pixel transforms."""

    x0: float
    y0: float
    x1: float
    y1: float
    vmin: float
    vmax: float

    def y_of(self, value: float) -> float:
        span = self.vmax - self.vmin or 1.0
        frac = (value - self.vmin) / span
        return self.y1 - frac * (self.y1 - self.y0)


def _nice_ticks(vmax: float, n: int = 5) -> list[float]:
    """Round tick positions covering [0, vmax]."""
    if vmax <= 0:
        return [0.0, 1.0]
    import math

    magnitude = 10.0 ** math.floor(math.log10(vmax / n))
    step = magnitude
    for mult in (1, 2, 2.5, 5, 10):
        step = magnitude * mult
        if vmax / step <= n:
            break
    ticks = []
    value = 0.0
    while value < vmax + step / 2:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _frame(
    canvas: SvgCanvas,
    title: str,
    ylabel: str,
    vmax: float,
    margin_left: int = 70,
    margin_bottom: int = 70,
    percent: bool = False,
) -> _Frame:
    """Draw the title, y axis, grid, and return the plot frame."""
    frame = _Frame(
        x0=margin_left,
        y0=50,
        x1=canvas.width - 20,
        y1=canvas.height - margin_bottom,
        vmin=0.0,
        vmax=vmax,
    )
    canvas.text(
        canvas.width / 2, 25, title, size=15, anchor="middle", bold=True
    )
    canvas.text(
        18,
        (frame.y0 + frame.y1) / 2,
        ylabel,
        size=12,
        anchor="middle",
        rotate=-90,
    )
    for tick in _nice_ticks(vmax):
        if tick > vmax * 1.001:
            continue
        y = frame.y_of(tick)
        canvas.line(frame.x0, y, frame.x1, y, stroke="#dddddd")
        label = f"{tick:.0%}" if percent else f"{tick:g}"
        canvas.text(frame.x0 - 6, y + 4, label, size=10, anchor="end")
    canvas.line(frame.x0, frame.y0, frame.x0, frame.y1, stroke="#333333")
    canvas.line(frame.x0, frame.y1, frame.x1, frame.y1, stroke="#333333")
    return frame


def _legend(
    canvas: SvgCanvas, names: list[str], colors: list[str]
) -> None:
    x = canvas.width - 20 - 110
    y = 55
    for name, color in zip(names, colors):
        canvas.rect(x, y - 9, 12, 12, fill=color)
        canvas.text(x + 17, y + 1, name, size=11)
        y += 17


def bar_chart(
    labels: list[str],
    series: dict[str, list[float]],
    title: str,
    ylabel: str = "",
    width: int = 900,
    height: int = 420,
    percent: bool = False,
) -> str:
    """Grouped bar chart: one group per label, one bar per series.

    Raises:
        ValueError: If a series' length does not match the labels.
    """
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
    canvas = SvgCanvas(width, height)
    vmax = max(
        (v for values in series.values() for v in values), default=1.0
    )
    frame = _frame(canvas, title, ylabel, vmax * 1.1, percent=percent)
    n_groups = len(labels)
    n_series = len(series)
    group_width = (frame.x1 - frame.x0) / max(n_groups, 1)
    bar_width = group_width * 0.8 / max(n_series, 1)
    colors = [PALETTE[i % len(PALETTE)] for i in range(n_series)]
    for g, label in enumerate(labels):
        group_x = frame.x0 + g * group_width + group_width * 0.1
        for s, (name, values) in enumerate(series.items()):
            value = values[g]
            y = frame.y_of(value)
            canvas.rect(
                group_x + s * bar_width,
                y,
                bar_width * 0.92,
                frame.y1 - y,
                fill=colors[s],
                title=f"{name} / {label}: "
                + (f"{value:.1%}" if percent else f"{value:g}"),
            )
        canvas.text(
            group_x + group_width * 0.4,
            frame.y1 + 12,
            label,
            size=10,
            anchor="end",
            rotate=-35,
        )
    _legend(canvas, list(series), colors)
    return canvas.render()


def line_chart(
    x_values: list[float],
    series: dict[str, list[float]],
    title: str,
    xlabel: str = "",
    ylabel: str = "",
    width: int = 760,
    height: int = 420,
    percent: bool = False,
) -> str:
    """Line chart with markers; x positions are equidistant categories.

    Raises:
        ValueError: On series/x length mismatch.
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    canvas = SvgCanvas(width, height)
    vmax = max(
        (v for values in series.values() for v in values), default=1.0
    )
    frame = _frame(canvas, title, ylabel, vmax * 1.1, percent=percent)
    n = len(x_values)
    step = (frame.x1 - frame.x0) / max(n - 1, 1)
    colors = [PALETTE[i % len(PALETTE)] for i in range(len(series))]
    for i, x in enumerate(x_values):
        px = frame.x0 + i * step
        canvas.text(
            px, frame.y1 + 16, f"{x:g}", size=10, anchor="middle"
        )
    canvas.text(
        (frame.x0 + frame.x1) / 2,
        frame.y1 + 38,
        xlabel,
        size=12,
        anchor="middle",
    )
    for color, (name, values) in zip(colors, series.items()):
        points = [
            (frame.x0 + i * step, frame.y_of(v))
            for i, v in enumerate(values)
        ]
        canvas.polyline(points, stroke=color)
        for px, py in points:
            canvas.circle(px, py, 3, fill=color)
    _legend(canvas, list(series), colors)
    return canvas.render()


def box_plot(
    labels: list[str],
    boxes: list,
    title: str,
    ylabel: str = "Pearson r",
    width: int = 760,
    height: int = 420,
    vmin: float = -1.0,
    vmax: float = 1.0,
) -> str:
    """Box-and-whisker plot from :class:`repro.core.correlation.BoxStats`
    objects (None entries render as an empty slot).

    Raises:
        ValueError: On labels/boxes length mismatch.
    """
    if len(labels) != len(boxes):
        raise ValueError("labels and boxes must have equal length")
    canvas = SvgCanvas(width, height)
    frame = _Frame(
        x0=70, y0=50, x1=width - 20, y1=height - 60, vmin=vmin, vmax=vmax
    )
    canvas.text(width / 2, 25, title, size=15, anchor="middle", bold=True)
    canvas.text(
        18, (frame.y0 + frame.y1) / 2, ylabel, size=12,
        anchor="middle", rotate=-90,
    )
    for tick in (-1.0, -0.5, 0.0, 0.5, 1.0):
        if not vmin <= tick <= vmax:
            continue
        y = frame.y_of(tick)
        canvas.line(frame.x0, y, frame.x1, y, stroke="#dddddd")
        canvas.text(frame.x0 - 6, y + 4, f"{tick:+.1f}", size=10,
                    anchor="end")
    canvas.line(frame.x0, frame.y0, frame.x0, frame.y1, stroke="#333")
    canvas.line(frame.x0, frame.y1, frame.x1, frame.y1, stroke="#333")
    slot = (frame.x1 - frame.x0) / max(len(labels), 1)
    box_width = slot * 0.45
    for i, (label, box) in enumerate(zip(labels, boxes)):
        cx = frame.x0 + (i + 0.5) * slot
        canvas.text(cx, frame.y1 + 16, label, size=10, anchor="middle")
        if box is None:
            canvas.text(cx, (frame.y0 + frame.y1) / 2, "n/a", size=10,
                        anchor="middle", fill="#999999")
            continue
        y_min = frame.y_of(box.minimum)
        y_max = frame.y_of(box.maximum)
        y_q1 = frame.y_of(box.q1)
        y_q3 = frame.y_of(box.q3)
        y_med = frame.y_of(box.median)
        canvas.line(cx, y_max, cx, y_q3, stroke="#555555")
        canvas.line(cx, y_q1, cx, y_min, stroke="#555555")
        canvas.line(cx - box_width / 4, y_max, cx + box_width / 4,
                    y_max, stroke="#555555")
        canvas.line(cx - box_width / 4, y_min, cx + box_width / 4,
                    y_min, stroke="#555555")
        canvas.rect(
            cx - box_width / 2,
            min(y_q3, y_q1),
            box_width,
            abs(y_q1 - y_q3),
            fill="#82c6e2",
            stroke="#333333",
            title=f"{label}: median {box.median:+.2f} (n={box.n})",
        )
        canvas.line(cx - box_width / 2, y_med, cx + box_width / 2,
                    y_med, stroke="#d65f5f", width=2)
    return canvas.render()


def stacked_bar_chart(
    bar_labels: list[str],
    stacks: list[dict[str, float]],
    title: str,
    ylabel: str = "share of execution time",
    width: int = 860,
    height: int = 460,
    normalise_to: float | None = None,
) -> str:
    """Stacked bars (the PICS view): one bar per unit, one segment per
    signature. Segment colours are consistent across bars.

    Args:
        normalise_to: If given, heights are divided by this value
            (e.g. total cycles) so the y axis reads as a share.

    Raises:
        ValueError: On labels/stacks length mismatch.
    """
    if len(bar_labels) != len(stacks):
        raise ValueError("bar_labels and stacks must have equal length")
    canvas = SvgCanvas(width, height)
    signatures: list[str] = []
    for stack in stacks:
        for signature in stack:
            if signature not in signatures:
                signatures.append(signature)
    scale = normalise_to or 1.0
    heights = [sum(stack.values()) / scale for stack in stacks]
    vmax = max(heights, default=1.0)
    frame = _frame(
        canvas, title, ylabel, vmax * 1.15,
        percent=normalise_to is not None,
    )
    color_of = {
        sig: PALETTE[i % len(PALETTE)] for i, sig in enumerate(signatures)
    }
    color_of["Base"] = "#c8c8c8"
    slot = (frame.x1 - frame.x0) / max(len(stacks), 1)
    bar_width = slot * 0.55
    for i, (label, stack) in enumerate(zip(bar_labels, stacks)):
        cx = frame.x0 + (i + 0.5) * slot
        base = frame.y1
        for signature in signatures:
            value = stack.get(signature, 0.0) / scale
            if value <= 0:
                continue
            top = base - (frame.y1 - frame.y_of(value))
            canvas.rect(
                cx - bar_width / 2,
                top,
                bar_width,
                base - top,
                fill=color_of[signature],
                stroke="#ffffff",
                title=f"{label} / {signature}: {value:.2%}"
                if normalise_to
                else f"{label} / {signature}: {value:g}",
            )
            base = top
        canvas.text(cx, frame.y1 + 14, label, size=10, anchor="middle")
    _legend(canvas, signatures, [color_of[s] for s in signatures])
    return canvas.render()
