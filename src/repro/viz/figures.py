"""Turn experiment results into the paper's figures (SVG files).

``tea-repro figures --out results/figures`` renders everything; each
function also works standalone on its experiment's result object.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.events import Event
from repro.core.pics import PicsProfile
from repro.core.psv import signature_name
from repro.experiments.ablation import EventSetResult
from repro.experiments.accuracy import AccuracyResult
from repro.experiments.case_lbm import LbmResult
from repro.experiments.case_nab import NabResult
from repro.experiments.correlation_exp import CorrelationResult
from repro.experiments.frequency import FrequencyResult
from repro.experiments.granularity import GranularityResult
from repro.viz.charts import (
    bar_chart,
    box_plot,
    line_chart,
    stacked_bar_chart,
)


def fig5_svg(result: AccuracyResult) -> str:
    """Fig 5: grouped bars of PICS error per benchmark."""
    labels = sorted(result.errors)
    series = {
        technique: [result.errors[b][technique] for b in labels]
        for technique in result.techniques
    }
    return bar_chart(
        labels,
        series,
        title="Fig 5: PICS error vs golden reference",
        ylabel="error",
        percent=True,
    )


def fig6_svg(
    benchmark: str,
    golden: PicsProfile,
    tea: PicsProfile,
    ibs: PicsProfile,
    top_indices: list[int],
) -> str:
    """Fig 6 (one benchmark): top-3 instruction PICS, three techniques."""
    bar_labels = []
    stacks = []
    for index in top_indices:
        for profile, tag in ((golden, "GR"), (tea, "TEA"), (ibs, "IBS")):
            total = profile.total() or 1.0
            bar_labels.append(f"I{index} {tag}")
            stacks.append(
                {
                    signature_name(psv): cycles / total
                    for psv, cycles in profile.stacks.get(
                        index, {}
                    ).items()
                }
            )
    return stacked_bar_chart(
        bar_labels,
        stacks,
        title=f"Fig 6: top-3 instruction PICS — {benchmark}",
        ylabel="share of execution time",
        normalise_to=1.0,
    )


def fig7_svg(result: CorrelationResult) -> str:
    """Fig 7: box plots of event-count/impact correlation."""
    labels = [event.display_name for event in Event]
    boxes = [result.boxes.get(event) for event in Event]
    return box_plot(
        labels,
        boxes,
        title="Fig 7: correlation between event count and impact",
    )


def fig8_svg(result: FrequencyResult) -> str:
    """Fig 8: error vs sampling period."""
    return line_chart(
        [float(p) for p in result.periods],
        {
            technique: [by_period[p] for p in result.periods]
            for technique, by_period in result.mean_errors.items()
        },
        title="Fig 8: error vs sampling period",
        xlabel="sampling period (cycles)",
        ylabel="mean error",
        percent=True,
    )


def fig9_svg(result: GranularityResult) -> str:
    """Fig 9: error by analysis granularity."""
    techniques = list(result.mean_errors)
    granularities = list(next(iter(result.mean_errors.values())))
    return bar_chart(
        [g.value for g in granularities],
        {
            technique: [
                result.mean_errors[technique][g] for g in granularities
            ]
            for technique in techniques
        },
        title="Fig 9: error by analysis granularity",
        ylabel="mean error",
        percent=True,
    )


def fig10_svg(result: LbmResult) -> str:
    """Fig 10: lbm critical-load PICS across techniques."""
    pics = result.pics
    return fig6_svg(
        "lbm (critical load)",
        pics.golden,
        pics.tea,
        pics.ibs,
        [pics.critical_load],
    )


def fig11_svg(result: LbmResult) -> str:
    """Fig 11: prefetch sweep — speedup and load/store shares."""
    distances = [float(p.distance) for p in result.sweep]
    return line_chart(
        distances,
        {
            "speedup": [p.speedup for p in result.sweep],
            "load share x10": [p.load_share * 10 for p in result.sweep],
            "store share x10": [
                p.store_share * 10 for p in result.sweep
            ],
        },
        title="Fig 11: lbm software-prefetch distance sweep",
        xlabel="prefetch distance (iterations)",
        ylabel="speedup / scaled share",
    )


def fig12_svg(result: NabResult) -> str:
    """Fig 12: nab fsqrt + serializing-op PICS."""
    indices = [result.fsqrt_index] + list(result.serial_indices)
    return fig6_svg(
        "nab", result.golden, result.tea, result.ibs, indices
    )


def ablation_event_sets_svg(result: EventSetResult) -> str:
    """Fig 3 ablation: explained fraction vs PSV width."""
    return line_chart(
        [float(p.bits) for p in result.points],
        {
            "explained evented cycles": [
                p.explained_fraction for p in result.points
            ],
            "error vs 9-bit PSV": [
                p.error_vs_full for p in result.points
            ],
        },
        title="Event-set width vs interpretability (Fig 3 trade-off)",
        xlabel="PSV width (bits)",
        ylabel="fraction",
        percent=True,
    )


def topdown_svg(breakdowns: dict) -> str:
    """Top-Down level-1 classification as stacked bars per benchmark."""
    labels = sorted(breakdowns)
    stacks = []
    for name in labels:
        td = breakdowns[name]
        stacks.append(
            {
                "retiring": td.retiring,
                "bad speculation": td.bad_speculation,
                "frontend bound": td.frontend_bound,
                "backend bound": td.backend_bound,
            }
        )
    return stacked_bar_chart(
        labels,
        stacks,
        title="Top-Down (level 1) classification",
        ylabel="share of commit slots",
        normalise_to=1.0,
    )


def sensitivity_svg(result) -> str:
    """A sensitivity sweep (cycles + DR-SQ share) as a line chart."""
    xs = [float(p.value) for p in result.points]
    base = result.points[0].cycles
    return line_chart(
        xs,
        {
            "cycles (normalised)": [
                p.cycles / base for p in result.points
            ],
            "DR-SQ share": [p.dr_sq_share for p in result.points],
            "IPC": [p.ipc for p in result.points],
        },
        title=f"Sensitivity: {result.workload} vs {result.parameter}",
        xlabel=result.parameter,
        ylabel="value",
    )


def phases_svg(sampler) -> str:
    """Phase timeline as stacked bars: one bar per window, segments by
    signature share (see :mod:`repro.core.phases`)."""
    windows = sorted(sampler.window_raw)
    labels = []
    stacks = []
    for window_id in windows:
        raw = sampler.window_raw[window_id]
        total = sum(raw.values()) or 1.0
        stack: dict[str, float] = {}
        for (_, psv), cycles in raw.items():
            name = signature_name(psv)
            stack[name] = stack.get(name, 0.0) + cycles / total
        labels.append(f"{window_id * sampler.window // 1000}k")
        stacks.append(stack)
    return stacked_bar_chart(
        labels,
        stacks,
        title="Phase-resolved PICS (signature share per window)",
        ylabel="share of window cycles",
        normalise_to=1.0,
    )


def render_all(runner, out_dir: str | Path) -> list[Path]:
    """Run every experiment through *runner* and write all figures.

    Returns the list of written files.
    """
    from repro.experiments import (
        ablation,
        accuracy,
        case_lbm,
        case_nab,
        correlation_exp,
        frequency,
        granularity,
        per_instruction,
    )

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def save(name: str, svg: str) -> None:
        path = out / f"{name}.svg"
        path.write_text(svg)
        written.append(path)

    save("fig5", fig5_svg(accuracy.run(runner)))
    for name, r in per_instruction.run(runner).items():
        save(
            f"fig6_{name}",
            fig6_svg(name, r.golden, r.tea, r.ibs, r.top_indices),
        )
    save("fig7", fig7_svg(correlation_exp.run(runner)))
    sweep_runner = runner.derive(
        extra_periods=frequency.SWEEP_PERIODS
    )
    save("fig8", fig8_svg(frequency.run(sweep_runner)))
    save("fig9", fig9_svg(granularity.run(runner)))
    lbm = case_lbm.run(runner)
    save("fig10", fig10_svg(lbm))
    save("fig11", fig11_svg(lbm))
    save("fig12", fig12_svg(case_nab.run(runner)))
    save(
        "ablation_event_sets",
        ablation_event_sets_svg(ablation.run_event_sets(runner)),
    )
    from repro.core.topdown import top_down
    from repro.workloads import WORKLOAD_NAMES

    save(
        "topdown",
        topdown_svg(
            {
                name: top_down(runner.run(name).result)
                for name in WORKLOAD_NAMES
            }
        ),
    )
    from repro.experiments import sensitivity

    save(
        "sensitivity_rob",
        sensitivity_svg(sensitivity.rob_size_sweep(scale=runner.scale)),
    )
    return written
