"""Figure rendering: dependency-free SVG charts for the paper's figures.

:mod:`repro.viz.svg` is a tiny SVG canvas; :mod:`repro.viz.charts` builds
grouped-bar, line, box-plot, and stacked-bar (PICS) charts on top of it;
:mod:`repro.viz.figures` turns experiment results into the paper's
figures (``tea-repro figures`` writes them all).
"""

from repro.viz.svg import SvgCanvas
from repro.viz.charts import (
    bar_chart,
    box_plot,
    line_chart,
    stacked_bar_chart,
)

__all__ = [
    "SvgCanvas",
    "bar_chart",
    "box_plot",
    "line_chart",
    "stacked_bar_chart",
]
